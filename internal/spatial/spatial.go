// Package spatial implements the paper's §III.A claim that "geospatial data
// ... can be viewed as geospatial 'images' and analyzed using CNNs":
// rasterization of point events (crimes, 911 calls) into grid images, a
// generator of hotspot-structured crime series with persistent spatial
// clusters, and helpers for next-window hotspot prediction.
package spatial

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/geo"
	"repro/internal/tensor"
)

// ErrBadConfig reports invalid parameters.
var ErrBadConfig = errors.New("spatial: invalid configuration")

// Raster counts events into a Size×Size grid over box and normalizes to
// [0, 1] by the max cell, returning a [1, Size, Size] image tensor.
func Raster(points []geo.Point, box geo.BBox, size int) (*tensor.Tensor, error) {
	if size < 2 {
		return nil, fmt.Errorf("%w: raster size %d", ErrBadConfig, size)
	}
	if box.MinLat >= box.MaxLat || box.MinLon >= box.MaxLon {
		return nil, fmt.Errorf("%w: degenerate bbox", ErrBadConfig)
	}
	img := tensor.New(1, size, size)
	maxCount := 0.0
	for _, p := range points {
		if !box.Contains(p) {
			continue
		}
		y := int((p.Lat - box.MinLat) / (box.MaxLat - box.MinLat) * float64(size))
		x := int((p.Lon - box.MinLon) / (box.MaxLon - box.MinLon) * float64(size))
		if y >= size {
			y = size - 1
		}
		if x >= size {
			x = size - 1
		}
		v := img.At(0, y, x) + 1
		img.Set(v, 0, y, x)
		if v > maxCount {
			maxCount = v
		}
	}
	if maxCount > 0 {
		img.Scale(1 / maxCount)
	}
	return img, nil
}

// HotspotConfig parameterizes the clustered crime series generator.
type HotspotConfig struct {
	Windows        int // number of time windows
	EventsPerWin   int
	Hotspots       int     // persistent cluster count
	HotspotStd     float64 // spatial spread of each cluster, degrees
	BackgroundFrac float64 // fraction of uniform background events
	Box            geo.BBox
}

// DefaultHotspotConfig covers metro Baton Rouge.
func DefaultHotspotConfig() HotspotConfig {
	return HotspotConfig{
		Windows: 40, EventsPerWin: 120, Hotspots: 3,
		HotspotStd: 0.015, BackgroundFrac: 0.25,
		Box: geo.BBox{MinLat: 30.30, MaxLat: 30.60, MinLon: -91.35, MaxLon: -91.00},
	}
}

// HotspotSeries is a sequence of event windows plus, per window, the label
// of the dominant hotspot (the prediction target).
type HotspotSeries struct {
	Cfg     HotspotConfig
	Windows [][]geo.Point
	// Dominant[i] is the hotspot index that produced the most events in
	// window i.
	Dominant []int
	Centers  []geo.Point
}

// GenerateHotspots produces a clustered event series. Each window, one
// hotspot is "active" (drawn with persistence: the active hotspot repeats
// with probability 0.8) and receives the bulk of clustered events, so the
// dominant hotspot of window t+1 is predictable from window t's raster —
// the learnable structure the CNN exploits.
func GenerateHotspots(cfg HotspotConfig, rng *rand.Rand) (*HotspotSeries, error) {
	if cfg.Windows < 2 || cfg.EventsPerWin < cfg.Hotspots || cfg.Hotspots < 2 {
		return nil, fmt.Errorf("%w: %+v", ErrBadConfig, cfg)
	}
	centers := make([]geo.Point, cfg.Hotspots)
	for i := range centers {
		centers[i] = geo.Point{
			Lat: cfg.Box.MinLat + (0.2+0.6*rng.Float64())*(cfg.Box.MaxLat-cfg.Box.MinLat),
			Lon: cfg.Box.MinLon + (0.2+0.6*rng.Float64())*(cfg.Box.MaxLon-cfg.Box.MinLon),
		}
	}
	s := &HotspotSeries{Cfg: cfg, Centers: centers}
	active := rng.Intn(cfg.Hotspots)
	for w := 0; w < cfg.Windows; w++ {
		if rng.Float64() > 0.8 {
			active = rng.Intn(cfg.Hotspots)
		}
		var events []geo.Point
		counts := make([]int, cfg.Hotspots)
		for e := 0; e < cfg.EventsPerWin; e++ {
			if rng.Float64() < cfg.BackgroundFrac {
				events = append(events, geo.Point{
					Lat: cfg.Box.MinLat + rng.Float64()*(cfg.Box.MaxLat-cfg.Box.MinLat),
					Lon: cfg.Box.MinLon + rng.Float64()*(cfg.Box.MaxLon-cfg.Box.MinLon),
				})
				continue
			}
			h := active
			if rng.Float64() < 0.3 { // minority share for other hotspots
				h = rng.Intn(cfg.Hotspots)
			}
			counts[h]++
			events = append(events, geo.Point{
				Lat: centers[h].Lat + cfg.HotspotStd*rng.NormFloat64(),
				Lon: centers[h].Lon + cfg.HotspotStd*rng.NormFloat64(),
			})
		}
		dominant := 0
		for i, c := range counts {
			if c > counts[dominant] {
				dominant = i
			}
		}
		s.Windows = append(s.Windows, events)
		s.Dominant = append(s.Dominant, dominant)
	}
	return s, nil
}

// Dataset rasterizes the series into (current-window image, next-window
// dominant hotspot) training pairs.
func (s *HotspotSeries) Dataset(size int) (*tensor.Tensor, []int, error) {
	n := len(s.Windows) - 1
	if n < 1 {
		return nil, nil, fmt.Errorf("%w: %d windows", ErrBadConfig, len(s.Windows))
	}
	images := tensor.New(n, 1, size, size)
	labels := make([]int, n)
	imgLen := size * size
	for i := 0; i < n; i++ {
		img, err := Raster(s.Windows[i], s.Cfg.Box, size)
		if err != nil {
			return nil, nil, err
		}
		copy(images.Data()[i*imgLen:(i+1)*imgLen], img.Data())
		labels[i] = s.Dominant[i+1]
	}
	return images, labels, nil
}

// MajorityBaseline returns the accuracy of always predicting the most
// common label — the bar a spatial model must clear.
func MajorityBaseline(labels []int) float64 {
	if len(labels) == 0 {
		return 0
	}
	counts := make(map[int]int)
	best := 0
	for _, l := range labels {
		counts[l]++
		if counts[l] > best {
			best = counts[l]
		}
	}
	return float64(best) / float64(len(labels))
}
