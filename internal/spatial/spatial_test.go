package spatial

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/geo"
)

func testBox() geo.BBox {
	return geo.BBox{MinLat: 30.0, MaxLat: 31.0, MinLon: -92.0, MaxLon: -91.0}
}

func TestRasterCountsAndNormalizes(t *testing.T) {
	box := testBox()
	pts := []geo.Point{
		{Lat: 30.05, Lon: -91.95}, // cell (0,0) — twice
		{Lat: 30.05, Lon: -91.95},
		{Lat: 30.95, Lon: -91.05}, // cell (size-1, size-1) — once
		{Lat: 45.0, Lon: -91.5},   // outside box: ignored
	}
	img, err := Raster(pts, box, 4)
	if err != nil {
		t.Fatal(err)
	}
	if img.Dim(0) != 1 || img.Dim(1) != 4 || img.Dim(2) != 4 {
		t.Fatalf("raster shape %v", img.Shape())
	}
	if img.At(0, 0, 0) != 1.0 {
		t.Fatalf("hottest cell = %g, want 1 (normalized)", img.At(0, 0, 0))
	}
	if img.At(0, 3, 3) != 0.5 {
		t.Fatalf("single-event cell = %g, want 0.5", img.At(0, 3, 3))
	}
	if img.Sum() != 1.5 {
		t.Fatalf("total mass = %g", img.Sum())
	}
}

func TestRasterEdgeCases(t *testing.T) {
	if _, err := Raster(nil, testBox(), 1); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("size err = %v", err)
	}
	if _, err := Raster(nil, geo.BBox{}, 4); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("bbox err = %v", err)
	}
	// Empty input renders an all-zero raster without dividing by zero.
	img, err := Raster(nil, testBox(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if img.Sum() != 0 {
		t.Fatalf("empty raster mass = %g", img.Sum())
	}
	// Boundary points clamp into the last cell.
	img2, err := Raster([]geo.Point{{Lat: 31.0, Lon: -91.0}}, testBox(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if img2.At(0, 3, 3) != 1 {
		t.Fatal("max-corner point must clamp into the grid")
	}
}

func TestGenerateHotspotsStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultHotspotConfig()
	s, err := GenerateHotspots(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Windows) != cfg.Windows || len(s.Dominant) != cfg.Windows {
		t.Fatalf("series sizes %d/%d", len(s.Windows), len(s.Dominant))
	}
	if len(s.Centers) != cfg.Hotspots {
		t.Fatalf("centers = %d", len(s.Centers))
	}
	for i, d := range s.Dominant {
		if d < 0 || d >= cfg.Hotspots {
			t.Fatalf("window %d dominant = %d", i, d)
		}
	}
	// Persistence: consecutive windows usually share the dominant hotspot.
	same := 0
	for i := 1; i < len(s.Dominant); i++ {
		if s.Dominant[i] == s.Dominant[i-1] {
			same++
		}
	}
	if frac := float64(same) / float64(len(s.Dominant)-1); frac < 0.6 {
		t.Fatalf("persistence fraction = %g, generator should persist", frac)
	}
	if _, err := GenerateHotspots(HotspotConfig{}, rng); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
}

func TestDatasetAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := DefaultHotspotConfig()
	cfg.Windows = 10
	s, err := GenerateHotspots(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	images, labels, err := s.Dataset(8)
	if err != nil {
		t.Fatal(err)
	}
	if images.Dim(0) != 9 || len(labels) != 9 {
		t.Fatalf("dataset sizes %d/%d", images.Dim(0), len(labels))
	}
	for i, l := range labels {
		if l != s.Dominant[i+1] {
			t.Fatalf("label %d = %d, want next-window dominant %d", i, l, s.Dominant[i+1])
		}
	}
}

func TestMajorityBaseline(t *testing.T) {
	if got := MajorityBaseline([]int{0, 0, 1}); got != 2.0/3 {
		t.Fatalf("baseline = %g", got)
	}
	if got := MajorityBaseline(nil); got != 0 {
		t.Fatalf("empty baseline = %g", got)
	}
}
