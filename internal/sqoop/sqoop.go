// Package sqoop implements bulk data transfer between the rdbms package and
// HDFS, modeled on Apache Sqoop: an import job splits a table on an integer
// column into ranges, runs one mapper per split in parallel, and writes one
// part file per mapper into a target HDFS directory; an export job reads
// part files back into a table. The paper's software layer uses Sqoop "to
// gather data from legacy database systems".
package sqoop

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"repro/internal/hdfs"
	"repro/internal/rdbms"
)

// Sentinel errors.
var (
	ErrBadMappers = errors.New("sqoop: mapper count must be positive")
	ErrBadTarget  = errors.New("sqoop: bad target directory")
)

// ImportConfig describes an import job.
type ImportConfig struct {
	Table     string
	SplitBy   string // integer column used to partition work
	Mappers   int
	TargetDir string // HDFS directory, e.g. /warehouse/crimes
}

// ImportResult summarizes a finished import.
type ImportResult struct {
	Rows      int
	PartFiles []string
	Splits    []Split
}

// Split is one mapper's key range [Lo, Hi).
type Split struct {
	Lo, Hi int64
}

// rowRecord is the serialized row format (JSON lines inside part files).
type rowRecord struct {
	Values []any `json:"values"`
}

// Import copies a table from db into fs under cfg.TargetDir.
func Import(db *rdbms.Database, fs *hdfs.Cluster, cfg ImportConfig) (*ImportResult, error) {
	if cfg.Mappers <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadMappers, cfg.Mappers)
	}
	if cfg.TargetDir == "" || cfg.TargetDir[0] != '/' {
		return nil, fmt.Errorf("%w: %q", ErrBadTarget, cfg.TargetDir)
	}
	table, err := db.Table(cfg.Table)
	if err != nil {
		return nil, err
	}
	minV, maxV, err := table.MinMaxInt(cfg.SplitBy)
	if err != nil {
		return nil, fmt.Errorf("split column: %w", err)
	}
	splits := computeSplits(minV, maxV, cfg.Mappers)

	type mapperOut struct {
		path string
		rows int
		err  error
	}
	outs := make([]mapperOut, len(splits))
	var wg sync.WaitGroup
	for i, sp := range splits {
		wg.Add(1)
		go func(i int, sp Split) {
			defer wg.Done()
			rows, err := table.ScanIntRange(cfg.SplitBy, sp.Lo, sp.Hi)
			if err != nil {
				outs[i] = mapperOut{err: err}
				return
			}
			var buf bytes.Buffer
			enc := json.NewEncoder(&buf)
			for _, r := range rows {
				if err := enc.Encode(rowRecord{Values: r}); err != nil {
					outs[i] = mapperOut{err: fmt.Errorf("encode row: %w", err)}
					return
				}
			}
			path := cfg.TargetDir + "/part-m-" + fmt.Sprintf("%05d", i)
			if err := fs.Write(path, buf.Bytes()); err != nil {
				outs[i] = mapperOut{err: err}
				return
			}
			outs[i] = mapperOut{path: path, rows: len(rows)}
		}(i, sp)
	}
	wg.Wait()
	res := &ImportResult{Splits: splits}
	for i, o := range outs {
		if o.err != nil {
			return nil, fmt.Errorf("mapper %d: %w", i, o.err)
		}
		res.Rows += o.rows
		res.PartFiles = append(res.PartFiles, o.path)
	}
	return res, nil
}

// computeSplits divides [min, max] into n contiguous half-open ranges whose
// union covers every value (the last range is widened by one to include max).
func computeSplits(minV, maxV int64, n int) []Split {
	if n < 1 {
		n = 1
	}
	span := maxV - minV + 1
	if span < int64(n) {
		n = int(span)
	}
	splits := make([]Split, 0, n)
	step := span / int64(n)
	rem := span % int64(n)
	lo := minV
	for i := 0; i < n; i++ {
		hi := lo + step
		if int64(i) < rem {
			hi++
		}
		splits = append(splits, Split{Lo: lo, Hi: hi})
		lo = hi
	}
	return splits
}

// Export reads part files from an HDFS directory back into a table. The
// table must already exist with a compatible schema.
func Export(fs *hdfs.Cluster, db *rdbms.Database, sourceDir, tableName string) (int, error) {
	table, err := db.Table(tableName)
	if err != nil {
		return 0, err
	}
	var paths []string
	for _, p := range fs.List() {
		if len(p) > len(sourceDir) && p[:len(sourceDir)+1] == sourceDir+"/" {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)
	total := 0
	cols := table.Columns()
	for _, path := range paths {
		data, err := fs.Read(path)
		if err != nil {
			return total, fmt.Errorf("read %s: %w", path, err)
		}
		dec := json.NewDecoder(bytes.NewReader(data))
		for dec.More() {
			var rec rowRecord
			if err := dec.Decode(&rec); err != nil {
				return total, fmt.Errorf("decode %s: %w", path, err)
			}
			row, err := coerceRow(rec.Values, cols)
			if err != nil {
				return total, fmt.Errorf("%s: %w", path, err)
			}
			if err := table.Insert(row); err != nil {
				return total, fmt.Errorf("insert from %s: %w", path, err)
			}
			total++
		}
	}
	return total, nil
}

// coerceRow repairs JSON's number erasure (everything becomes float64)
// against the table schema.
func coerceRow(values []any, cols []rdbms.Column) (rdbms.Row, error) {
	if len(values) != len(cols) {
		return nil, fmt.Errorf("%w: %d values for %d columns", rdbms.ErrBadRow, len(values), len(cols))
	}
	row := make(rdbms.Row, len(values))
	for i, v := range values {
		switch cols[i].Type {
		case rdbms.IntCol:
			f, ok := v.(float64)
			if !ok {
				return nil, fmt.Errorf("%w: column %s got %T", rdbms.ErrBadType, cols[i].Name, v)
			}
			row[i] = int64(f)
		case rdbms.FloatCol:
			f, ok := v.(float64)
			if !ok {
				return nil, fmt.Errorf("%w: column %s got %T", rdbms.ErrBadType, cols[i].Name, v)
			}
			row[i] = f
		case rdbms.StringCol:
			s, ok := v.(string)
			if !ok {
				return nil, fmt.Errorf("%w: column %s got %T", rdbms.ErrBadType, cols[i].Name, v)
			}
			row[i] = s
		default:
			return nil, fmt.Errorf("%w: column %s has unknown type", rdbms.ErrBadType, cols[i].Name)
		}
	}
	return row, nil
}

// SplitBoundariesString renders splits for logs.
func SplitBoundariesString(splits []Split) string {
	var b bytes.Buffer
	for i, s := range splits {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("[" + strconv.FormatInt(s.Lo, 10) + "," + strconv.FormatInt(s.Hi, 10) + ")")
	}
	return b.String()
}
