package sqoop

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/hdfs"
	"repro/internal/rdbms"
)

func setup(t *testing.T, rows int) (*rdbms.Database, *hdfs.Cluster) {
	t.Helper()
	db := rdbms.NewDatabase()
	tb, err := db.CreateTable("crimes", []rdbms.Column{
		{Name: "id", Type: rdbms.IntCol},
		{Name: "kind", Type: rdbms.StringCol},
		{Name: "severity", Type: rdbms.FloatCol},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := tb.Insert(rdbms.Row{int64(i), fmt.Sprintf("kind-%d", i%4), float64(i) / 2}); err != nil {
			t.Fatal(err)
		}
	}
	fs := hdfs.NewCluster(hdfs.Config{BlockSize: 512, Replication: 2}, rand.New(rand.NewSource(1)))
	for i := 0; i < 3; i++ {
		if err := fs.AddDataNode(fmt.Sprintf("dn-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return db, fs
}

func TestImportWritesPartFiles(t *testing.T) {
	db, fs := setup(t, 100)
	res, err := Import(db, fs, ImportConfig{Table: "crimes", SplitBy: "id", Mappers: 4, TargetDir: "/warehouse/crimes"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 100 {
		t.Fatalf("imported %d rows", res.Rows)
	}
	if len(res.PartFiles) != 4 {
		t.Fatalf("part files = %v", res.PartFiles)
	}
	for _, p := range res.PartFiles {
		if !fs.Exists(p) {
			t.Fatalf("missing part file %s", p)
		}
	}
	if len(res.Splits) != 4 {
		t.Fatalf("splits = %v", res.Splits)
	}
	// Splits must cover [0, 100) contiguously.
	if res.Splits[0].Lo != 0 || res.Splits[3].Hi != 100 {
		t.Fatalf("split coverage: %s", SplitBoundariesString(res.Splits))
	}
	for i := 1; i < len(res.Splits); i++ {
		if res.Splits[i].Lo != res.Splits[i-1].Hi {
			t.Fatalf("gap in splits: %s", SplitBoundariesString(res.Splits))
		}
	}
}

func TestImportExportRoundTrip(t *testing.T) {
	db, fs := setup(t, 57)
	if _, err := Import(db, fs, ImportConfig{Table: "crimes", SplitBy: "id", Mappers: 3, TargetDir: "/wh/c"}); err != nil {
		t.Fatal(err)
	}
	// Export into a fresh table with the same schema.
	dst := rdbms.NewDatabase()
	if _, err := dst.CreateTable("crimes2", []rdbms.Column{
		{Name: "id", Type: rdbms.IntCol},
		{Name: "kind", Type: rdbms.StringCol},
		{Name: "severity", Type: rdbms.FloatCol},
	}); err != nil {
		t.Fatal(err)
	}
	n, err := Export(fs, dst, "/wh/c", "crimes2")
	if err != nil {
		t.Fatal(err)
	}
	if n != 57 {
		t.Fatalf("exported %d", n)
	}
	tb, _ := dst.Table("crimes2")
	if tb.Count() != 57 {
		t.Fatalf("table count = %d", tb.Count())
	}
	// Spot check a row's types survived the JSON round trip.
	rows, err := tb.ScanIntRange("id", 10, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("row 10 missing")
	}
	if rows[0][1].(string) != "kind-2" || rows[0][2].(float64) != 5.0 {
		t.Fatalf("row = %v", rows[0])
	}
}

func TestImportMoreMappersThanKeys(t *testing.T) {
	db, fs := setup(t, 3)
	res, err := Import(db, fs, ImportConfig{Table: "crimes", SplitBy: "id", Mappers: 10, TargetDir: "/w"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 3 {
		t.Fatalf("rows = %d", res.Rows)
	}
	if len(res.Splits) > 3 {
		t.Fatalf("splits = %d, should collapse to key span", len(res.Splits))
	}
}

func TestImportErrors(t *testing.T) {
	db, fs := setup(t, 5)
	if _, err := Import(db, fs, ImportConfig{Table: "crimes", SplitBy: "id", Mappers: 0, TargetDir: "/w"}); !errors.Is(err, ErrBadMappers) {
		t.Fatalf("mappers err = %v", err)
	}
	if _, err := Import(db, fs, ImportConfig{Table: "crimes", SplitBy: "id", Mappers: 2, TargetDir: "w"}); !errors.Is(err, ErrBadTarget) {
		t.Fatalf("target err = %v", err)
	}
	if _, err := Import(db, fs, ImportConfig{Table: "nope", SplitBy: "id", Mappers: 2, TargetDir: "/w"}); !errors.Is(err, rdbms.ErrNoTable) {
		t.Fatalf("table err = %v", err)
	}
	if _, err := Import(db, fs, ImportConfig{Table: "crimes", SplitBy: "kind", Mappers: 2, TargetDir: "/w"}); !errors.Is(err, rdbms.ErrBadType) {
		t.Fatalf("split col err = %v", err)
	}
}

func TestExportErrors(t *testing.T) {
	_, fs := setup(t, 5)
	dst := rdbms.NewDatabase()
	if _, err := Export(fs, dst, "/nowhere", "ghost"); !errors.Is(err, rdbms.ErrNoTable) {
		t.Fatalf("err = %v", err)
	}
}

func TestComputeSplitsProperty(t *testing.T) {
	for _, tc := range []struct {
		lo, hi int64
		n      int
	}{{0, 99, 4}, {5, 5, 3}, {-10, 10, 7}, {0, 6, 7}, {1, 1000000, 13}} {
		splits := computeSplits(tc.lo, tc.hi, tc.n)
		if splits[0].Lo != tc.lo {
			t.Fatalf("%+v: first lo = %d", tc, splits[0].Lo)
		}
		if splits[len(splits)-1].Hi != tc.hi+1 {
			t.Fatalf("%+v: last hi = %d, want %d", tc, splits[len(splits)-1].Hi, tc.hi+1)
		}
		for i := 1; i < len(splits); i++ {
			if splits[i].Lo != splits[i-1].Hi {
				t.Fatalf("%+v: discontiguous at %d", tc, i)
			}
		}
	}
}
