package stream

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/profile"
)

// This file implements the replicated, multi-node broker the paper's
// fault-tolerant streaming backbone calls for ("even though some machines
// may fail, we can still access the data"): a Cluster of BrokerNodes each
// hosting partition replicas, with a deterministic per-partition leader
// elected from the in-sync replica set (ISR), epoch-numbered leadership for
// fencing stale producers, leader-side ack-after-ISR-replication produce,
// follower catch-up with high-watermark truncation on leader change, and
// consumer groups whose polls transparently redirect to new leaders.
//
// The replication model mirrors Kafka's ISR design at simulation scale:
//
//   - Every partition is assigned Replication replicas across distinct
//     nodes; the first assigned replica is the initial leader at epoch 1.
//   - A produce is acknowledged only after the record is appended to the
//     leader and every follower still in the ISR. A follower that is down,
//     or whose replication round is failed by the fault hook, is dropped
//     from the ISR before the append (the ISR shrinks); the append itself
//     is atomic across the surviving ISR, so an acknowledged record is on
//     every ISR member and any future leader elected from the ISR has it.
//   - If fewer than MinISR replicas (including the leader) would carry the
//     record, the produce is rejected with ErrNotEnoughReplicas and nothing
//     is appended — unavailable, never silently lossy.
//   - When a leader's node crashes the partition becomes leaderless;
//     the next Tick elects a new leader from the live ISR members and bumps
//     the epoch. If no ISR member is alive the partition stays unavailable
//     until one restarts (clean mode), or — with AllowUnclean — the most
//     caught-up live replica is elected at the documented risk of losing
//     acknowledged records.
//   - Tick also drives follower catch-up: live replicas behind the leader
//     copy the missing suffix (subject to the fault hook), replicas whose
//     log runs past the new leader's high watermark truncate to it (the
//     divergent suffix was never acknowledged under the current epoch),
//     and caught-up replicas rejoin the ISR.
//
// The high watermark of a partition is its leader's log end: because the
// ISR append is atomic, every ISR member is always exactly at the HW, and
// consumers are never served a record that could disappear in a clean
// failover.

// Replication/election sentinel errors.
var (
	ErrBadCluster        = fmt.Errorf("stream: invalid cluster configuration")
	ErrBadNode           = fmt.Errorf("stream: node id out of range")
	ErrNodeDown          = fmt.Errorf("stream: node is down")
	ErrNodeUp            = fmt.Errorf("stream: node already up")
	ErrNoLeader          = fmt.Errorf("stream: partition has no leader")
	ErrNotEnoughReplicas = fmt.Errorf("stream: in-sync replicas below min.insync")
	ErrStaleEpoch        = fmt.Errorf("stream: produce fenced by stale leader epoch")
)

// ClusterConfig sizes a replicated broker cluster.
type ClusterConfig struct {
	// Nodes is the number of broker nodes (>= Replication).
	Nodes int
	// Replication is the number of replicas per partition.
	Replication int
	// MinISR is the minimum in-sync replica count (leader included) needed
	// to acknowledge a produce. 0 defaults to 1: the leader alone may ack,
	// trading durability for availability exactly like Kafka's default
	// min.insync.replicas.
	MinISR int
	// AllowUnclean permits electing a non-ISR (lagging) replica when every
	// ISR member is dead. Acknowledged records past the new leader's log
	// end are lost and counted in Stats().Truncated. Default false: the
	// partition stays unavailable instead.
	AllowUnclean bool
	// Now supplies record timestamps (nil = time.Now).
	Now func() time.Time
}

// ClusterStats counts replication and election activity since boot.
type ClusterStats struct {
	Elections         int // leader elections (clean + unclean)
	UncleanElections  int // elections that picked a non-ISR replica
	ISRShrinks        int // followers dropped from an ISR
	ISRExpands        int // followers that caught up and rejoined an ISR
	Crashes           int // node crashes
	Restarts          int // node restarts
	CatchUpRecords    int // records copied to lagging followers
	Truncated         int // records discarded by high-watermark truncation
	UnavailableErrors int // produces rejected: no leader or ISR below min
	StaleProduces     int // produces fenced by a stale epoch
	Ticks             int // controller ticks run
	LastFailoverTicks int // ticks from the most recent leadership loss to re-election
	MaxFailoverTicks  int // worst failover observed
}

// ClusterEvent is one replication/election state change, delivered to the
// observer installed with SetObserver.
type ClusterEvent struct {
	Kind          string // leader-lost | leader-elected | isr-shrink | isr-expand | truncate | node-crash | node-restart
	Topic         string
	Partition     int
	Node          int
	Epoch         int64
	FailoverTicks int  // leader-elected only
	Unclean       bool // leader-elected only
	Detail        string
}

// NodeState is one broker node's externally visible state.
type NodeState struct {
	ID       int  `json:"id"`
	Up       bool `json:"up"`
	Crashes  int  `json:"crashes"`
	Restarts int  `json:"restarts"`
	Replicas int  `json:"replicas"` // partition replicas hosted
	Leading  int  `json:"leading"`  // partitions currently led
}

// PartitionState is one partition's replication state.
type PartitionState struct {
	Topic         string  `json:"topic"`
	Partition     int     `json:"partition"`
	Leader        int     `json:"leader"` // -1 when leaderless
	Epoch         int64   `json:"epoch"`
	Replicas      []int   `json:"replicas"`
	ISR           []int   `json:"isr"`
	HighWatermark int64   `json:"highWatermark"`
	ReplicaEnds   []int64 `json:"replicaEnds"` // log end per replica, Replicas order
}

// ClusterState is the full cluster snapshot served at /api/cluster.
type ClusterState struct {
	Nodes           []NodeState      `json:"nodes"`
	Partitions      []PartitionState `json:"partitions"`
	UnderReplicated int              `json:"underReplicated"` // partitions with ISR below replication factor
	Leaderless      int              `json:"leaderless"`
	Stats           ClusterStats     `json:"stats"`
}

// replicaLog is one partition replica's local log on one node.
type replicaLog struct {
	records []Record
}

// brokerNode is one broker process: up/down state plus the replica logs it
// hosts, keyed topic → partition index (nil where it hosts no replica).
type brokerNode struct {
	up       bool
	crashes  int
	restarts int
	logs     map[string][]*replicaLog
}

// clusterPart is the controller's metadata for one partition.
type clusterPart struct {
	replicas   []int // node ids, assignment order; replicas[0] is the initial leader
	isr        []int // in-sync subset, ascending
	leader     int   // node id, -1 while leaderless
	epoch      int64
	lostAtTick int // controller tick when leadership was last lost
}

// clusterTopic holds a topic's partitions plus the round-robin cursor for
// empty-key produce.
type clusterTopic struct {
	parts []*clusterPart
	rr    uint64
}

// clusterGroup is a consumer group's offsets: committed is durable progress,
// polled is the extent of the last uncommitted Poll (redelivered until
// CommitPolled).
type clusterGroup struct {
	committed map[string][]int64
	polled    map[string][]int64
}

// Cluster is a replicated multi-node broker behind the Bus interface. It is
// safe for concurrent use; the controller (failure detection, elections,
// catch-up) runs inside Tick so failover latency is measured in ticks of
// the simulated clock, never in wall time.
type Cluster struct {
	mu        sync.Mutex
	cfg       ClusterConfig
	nodes     []*brokerNode
	topics    map[string]*clusterTopic
	groups    map[string]*clusterGroup
	now       func() time.Time
	stats     ClusterStats
	faultHook func(op string, node int) error
	observer  func(ClusterEvent)

	// Continuous-profiling regions, resolved once by SetProfiler; the nil
	// handles before wiring cost one branch per produce/poll.
	profAppend    *profile.Region
	profReplicate *profile.Region
	profPoll      *profile.Region
}

var _ Bus = (*Cluster)(nil)

// NewCluster boots cfg.Nodes empty broker nodes.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.MinISR == 0 {
		cfg.MinISR = 1
	}
	if cfg.Nodes < 1 || cfg.Replication < 1 || cfg.Replication > cfg.Nodes || cfg.MinISR > cfg.Replication {
		return nil, fmt.Errorf("%w: nodes=%d replication=%d minISR=%d",
			ErrBadCluster, cfg.Nodes, cfg.Replication, cfg.MinISR)
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	c := &Cluster{
		cfg:    cfg,
		nodes:  make([]*brokerNode, cfg.Nodes),
		topics: make(map[string]*clusterTopic),
		groups: make(map[string]*clusterGroup),
		now:    cfg.Now,
	}
	for i := range c.nodes {
		c.nodes[i] = &brokerNode{up: true, logs: make(map[string][]*replicaLog)}
	}
	return c, nil
}

// SetClock overrides the cluster's record-timestamp clock.
func (c *Cluster) SetClock(now func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = now
}

// SetProfiler resolves the cluster's continuous-profiling regions: the
// leader-side append ("broker/append", with the ISR fan-out attributed to
// "broker/append/replicate") and the consumer read ("broker/poll"). nil
// detaches.
func (c *Cluster) SetProfiler(p *profile.Profiler) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p == nil {
		c.profAppend, c.profReplicate, c.profPoll = nil, nil, nil
		return
	}
	c.profAppend = p.Region("broker/append")
	c.profReplicate = p.Region("broker/append/replicate")
	c.profPoll = p.Region("broker/poll")
}

// SetFaultHook installs the replication-lag injection seam. The hook is
// consulted once per follower per replication round with op "replicate"
// (leader-side fan-out during produce) or "catchup" (follower fetch during
// Tick); a non-nil error makes that follower miss the round. nil disables.
func (c *Cluster) SetFaultHook(hook func(op string, node int) error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.faultHook = hook
}

// SetObserver installs the replication/election event callback. The observer
// runs with the cluster lock held and must not call back into the cluster.
func (c *Cluster) SetObserver(fn func(ClusterEvent)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.observer = fn
}

func (c *Cluster) emit(ev ClusterEvent) {
	if c.observer != nil {
		c.observer(ev)
	}
}

// CreateTopic registers a topic, assigning each partition's replicas
// round-robin across the nodes (replica j of partition p lands on node
// (p+j) mod Nodes) so leadership spreads evenly.
func (c *Cluster) CreateTopic(name string, partitions int) error {
	if partitions <= 0 {
		return fmt.Errorf("%w: %d partitions", ErrBadPartition, partitions)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.topics[name]; ok {
		return fmt.Errorf("%w: %s", ErrTopicExists, name)
	}
	t := &clusterTopic{parts: make([]*clusterPart, partitions)}
	for n := range c.nodes {
		c.nodes[n].logs[name] = make([]*replicaLog, partitions)
	}
	for p := range t.parts {
		replicas := make([]int, c.cfg.Replication)
		for j := range replicas {
			replicas[j] = (p + j) % c.cfg.Nodes
			c.nodes[replicas[j]].logs[name][p] = &replicaLog{}
		}
		isr := append([]int(nil), replicas...)
		sort.Ints(isr)
		t.parts[p] = &clusterPart{replicas: replicas, isr: isr, leader: replicas[0], epoch: 1}
	}
	c.topics[name] = t
	return nil
}

// Topics lists topic names in sorted order.
func (c *Cluster) Topics() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.topics))
	for n := range c.topics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Partitions returns the partition count for a topic.
func (c *Cluster) Partitions(topicName string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.topics[topicName]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownTopic, topicName)
	}
	return len(t.parts), nil
}

// NodeCount returns the number of broker nodes (up or down).
func (c *Cluster) NodeCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.nodes)
}

// NodeUp reports whether a node is currently alive.
func (c *Cluster) NodeUp(id int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return id >= 0 && id < len(c.nodes) && c.nodes[id].up
}

// CrashNode takes a broker node down. Partitions it led become leaderless
// immediately (the crash is observable; re-election waits for the next
// Tick, which is how failover latency is measured); its ISR memberships are
// kept until a produce proves it missed data, so a full restart before any
// traffic loses nothing and costs no epoch bump.
func (c *Cluster) CrashNode(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || id >= len(c.nodes) {
		return fmt.Errorf("%w: %d of %d", ErrBadNode, id, len(c.nodes))
	}
	n := c.nodes[id]
	if !n.up {
		return fmt.Errorf("%w: node %d", ErrNodeDown, id)
	}
	n.up = false
	n.crashes++
	c.stats.Crashes++
	c.emit(ClusterEvent{Kind: "node-crash", Node: id})
	for name, t := range c.topics {
		for p, part := range t.parts {
			if part.leader == id {
				part.leader = -1
				part.lostAtTick = c.stats.Ticks
				c.emit(ClusterEvent{Kind: "leader-lost", Topic: name, Partition: p, Node: id, Epoch: part.epoch})
			}
		}
	}
	return nil
}

// RestartNode brings a crashed node back with its logs intact. It rejoins
// each partition as a follower and is caught up (and re-admitted to the
// ISR) by subsequent Ticks; if it is the only remaining ISR member of a
// leaderless partition, the next Tick re-elects it with no data loss.
func (c *Cluster) RestartNode(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || id >= len(c.nodes) {
		return fmt.Errorf("%w: %d of %d", ErrBadNode, id, len(c.nodes))
	}
	n := c.nodes[id]
	if n.up {
		return fmt.Errorf("%w: node %d", ErrNodeUp, id)
	}
	n.up = true
	n.restarts++
	c.stats.Restarts++
	c.emit(ClusterEvent{Kind: "node-restart", Node: id})
	return nil
}

// Produce appends a record through the partition leader, routing non-empty
// keys by hash (per-key order is preserved within a partition). Empty keys
// are routed round-robin across partitions to avoid hotspotting one
// partition — which means records produced with an empty key carry no
// relative ordering guarantee at all; callers that need ordering must key
// their records.
func (c *Cluster) Produce(topicName, key string, value []byte) (int, int64, error) {
	return c.ProduceH(topicName, key, value, nil)
}

// ProduceH is Produce with per-record headers. The record is acknowledged
// only after it is appended to the leader and every in-sync follower; see
// the package commentary on ISR shrink and MinISR rejection.
func (c *Cluster) ProduceH(topicName, key string, value []byte, headers map[string]string) (int, int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.topics[topicName]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %s", ErrUnknownTopic, topicName)
	}
	var p int
	if key == "" {
		p = int(t.rr % uint64(len(t.parts)))
		t.rr++
	} else {
		p = partitionFor(key, len(t.parts))
	}
	off, err := c.produceLocked(topicName, t, p, key, value, headers)
	return p, off, err
}

// ProduceWithEpoch appends to an explicit partition on behalf of a producer
// holding cached routing metadata: the call is fenced by the leader epoch it
// presents and rejected with ErrStaleEpoch if leadership has moved on —
// exactly how a zombie leader's writes are kept out of the log after a
// failover.
func (c *Cluster) ProduceWithEpoch(topicName string, partitionID int, epoch int64, key string, value []byte, headers map[string]string) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.topics[topicName]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownTopic, topicName)
	}
	if partitionID < 0 || partitionID >= len(t.parts) {
		return 0, fmt.Errorf("%w: %d of %d", ErrBadPartition, partitionID, len(t.parts))
	}
	if t.parts[partitionID].epoch != epoch {
		c.stats.StaleProduces++
		return 0, fmt.Errorf("%w: presented %d, current %d", ErrStaleEpoch, epoch, t.parts[partitionID].epoch)
	}
	return c.produceLocked(topicName, t, partitionID, key, value, headers)
}

// LeaderEpoch returns a partition's current leader (-1 while leaderless)
// and epoch — the routing metadata an epoch-fenced producer caches.
func (c *Cluster) LeaderEpoch(topicName string, partitionID int) (leader int, epoch int64, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.topics[topicName]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %s", ErrUnknownTopic, topicName)
	}
	if partitionID < 0 || partitionID >= len(t.parts) {
		return 0, 0, fmt.Errorf("%w: %d of %d", ErrBadPartition, partitionID, len(t.parts))
	}
	part := t.parts[partitionID]
	return part.leader, part.epoch, nil
}

// PartitionFor exposes the hash route a non-empty key takes, so tests and
// experiments can aim a record at a specific partition's leader.
func (c *Cluster) PartitionFor(topicName, key string) (int, error) {
	n, err := c.Partitions(topicName)
	if err != nil {
		return 0, err
	}
	return partitionFor(key, n), nil
}

// produceLocked runs the leader-side replication protocol for one record.
// Replication outcomes are decided before anything is appended, so the
// append is atomic across the surviving ISR: an acknowledged record is on
// every ISR member, and a rejected produce leaves no partial state for a
// retry to duplicate.
func (c *Cluster) produceLocked(topicName string, t *clusterTopic, p int, key string, value []byte, headers map[string]string) (int64, error) {
	spAppend := c.profAppend.Start()
	part := t.parts[p]
	if part.leader == -1 || !c.nodes[part.leader].up {
		spAppend.End()
		if part.leader != -1 {
			// Defensive: a crash always clears leadership, but never ack
			// through a dead leader.
			part.leader = -1
			part.lostAtTick = c.stats.Ticks
		}
		c.stats.UnavailableErrors++
		return 0, fmt.Errorf("%w: %s/%d (epoch %d)", ErrNoLeader, topicName, p, part.epoch)
	}
	// Decide each in-sync follower's replication round first. Everything
	// from here to the acknowledged append is the replication protocol and
	// is attributed to broker/append/replicate. Both spans end together on
	// each exit (a deferred End would bill the caller's epilogue to
	// replication) and share the append span's start reading — two clock
	// reads per record instead of four, at the cost of billing the
	// nanoseconds of the leader check above to replicate instead of append.
	spReplicate := c.profReplicate.StartAt(spAppend.StartTime())
	survivors := part.isr[:0:0]
	var dropped []int
	for _, n := range part.isr {
		if n == part.leader {
			survivors = append(survivors, n)
			continue
		}
		if !c.nodes[n].up {
			dropped = append(dropped, n)
			continue
		}
		if c.faultHook != nil {
			if err := c.faultHook("replicate", n); err != nil {
				dropped = append(dropped, n)
				continue
			}
		}
		survivors = append(survivors, n)
	}
	if len(survivors) < c.cfg.MinISR {
		at := profile.Now()
		spReplicate.EndAt(at)
		spAppend.EndAt(at)
		// Not enough in-sync copies would carry the record: reject without
		// touching any log or the ISR, so a later retry can succeed cleanly.
		c.stats.UnavailableErrors++
		return 0, fmt.Errorf("%w: %s/%d would ack on %d < %d replicas",
			ErrNotEnoughReplicas, topicName, p, len(survivors), c.cfg.MinISR)
	}
	leaderLog := c.nodes[part.leader].logs[topicName][p]
	off := int64(len(leaderLog.records))
	v := make([]byte, len(value))
	copy(v, value)
	var h map[string]string
	if len(headers) > 0 {
		h = make(map[string]string, len(headers))
		for k, val := range headers {
			h[k] = val
		}
	}
	rec := Record{Topic: topicName, Partition: p, Offset: off, Key: key, Value: v, Headers: h, Time: c.now()}
	for _, n := range survivors {
		l := c.nodes[n].logs[topicName][p]
		l.records = append(l.records, rec)
	}
	if len(dropped) > 0 {
		sort.Ints(survivors)
		part.isr = append(part.isr[:0], survivors...)
		c.stats.ISRShrinks += len(dropped)
		for _, n := range dropped {
			c.emit(ClusterEvent{Kind: "isr-shrink", Topic: topicName, Partition: p, Node: n, Epoch: part.epoch,
				Detail: fmt.Sprintf("missed offset %d", off)})
		}
	}
	at := profile.Now()
	spReplicate.EndAt(at)
	spAppend.EndAt(at)
	return off, nil
}

// group returns (creating) a consumer group's state.
func (c *Cluster) group(name string) *clusterGroup {
	g, ok := c.groups[name]
	if !ok {
		g = &clusterGroup{committed: make(map[string][]int64), polled: make(map[string][]int64)}
		c.groups[name] = g
	}
	return g
}

func (c *Cluster) groupOffsets(g *clusterGroup, m map[string][]int64, topicName string, parts int) []int64 {
	offs, ok := m[topicName]
	if !ok {
		offs = make([]int64, parts)
		m[topicName] = offs
	}
	return offs
}

// Poll reads up to max records for a consumer group starting at its
// committed offsets, reading each partition from its current leader up to
// the high watermark. Nothing is committed: polling again before
// CommitPolled redelivers the same records, so a consumer that crashes
// between poll and processing loses nothing (at-least-once; the legacy
// single-node Broker keeps its at-most-once Poll). Leaderless partitions
// are skipped and served transparently after the next election — the
// consumer never learns a failover happened.
func (c *Cluster) Poll(groupName, topicName string, max int) ([]Record, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sp := c.profPoll.Start()
	defer sp.End()
	t, ok := c.topics[topicName]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownTopic, topicName)
	}
	g := c.group(groupName)
	committed := c.groupOffsets(g, g.committed, topicName, len(t.parts))
	polled := c.groupOffsets(g, g.polled, topicName, len(t.parts))
	copy(polled, committed)
	var out []Record
	for p, part := range t.parts {
		if len(out) >= max {
			break
		}
		if part.leader == -1 || !c.nodes[part.leader].up {
			continue
		}
		log := c.nodes[part.leader].logs[topicName][p]
		end := int64(len(log.records))
		start := committed[p]
		if start > end {
			// Only possible after an unclean election truncated acknowledged
			// records; resume from the new log end rather than erroring the
			// consumer forever.
			start = end
			committed[p] = end
		}
		for o := start; o < end && len(out) < max; o++ {
			out = append(out, log.records[o])
			polled[p] = o + 1
		}
	}
	return out, nil
}

// CommitPolled advances the group's committed offsets over exactly what the
// last Poll for this topic returned. Calling it after processing a batch
// completes the poll-then-commit flow; skipping it (a consumer crash)
// redelivers the batch — the documented duplicate bound is therefore one
// uncommitted batch per consumer-group failure.
func (c *Cluster) CommitPolled(groupName, topicName string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.topics[topicName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTopic, topicName)
	}
	g := c.group(groupName)
	polled, ok := g.polled[topicName]
	if !ok {
		return nil
	}
	committed := c.groupOffsets(g, g.committed, topicName, len(t.parts))
	for p := range committed {
		if polled[p] > committed[p] {
			committed[p] = polled[p]
		}
	}
	return nil
}

// Committed returns a group's committed offset for a partition.
func (c *Cluster) Committed(groupName, topicName string, partitionID int) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.topics[topicName]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownTopic, topicName)
	}
	if partitionID < 0 || partitionID >= len(t.parts) {
		return 0, fmt.Errorf("%w: %d", ErrBadPartition, partitionID)
	}
	g, ok := c.groups[groupName]
	if !ok {
		return 0, nil
	}
	offs, ok := g.committed[topicName]
	if !ok {
		return 0, nil
	}
	return offs[partitionID], nil
}

// Lag returns the records a group has not yet committed across a topic,
// measured against each partition's high watermark (leaderless partitions
// use their most advanced live replica).
func (c *Cluster) Lag(groupName, topicName string) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.topics[topicName]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownTopic, topicName)
	}
	g := c.groups[groupName]
	var lag int64
	for p, part := range t.parts {
		end := c.hwLocked(topicName, part, p)
		var committed int64
		if g != nil {
			if offs, ok := g.committed[topicName]; ok {
				committed = offs[p]
			}
		}
		if end > committed {
			lag += end - committed
		}
	}
	return lag, nil
}

// hwLocked computes a partition's high watermark: the leader's log end, or
// the most advanced live replica's end while leaderless.
func (c *Cluster) hwLocked(topicName string, part *clusterPart, p int) int64 {
	if part.leader != -1 && c.nodes[part.leader].up {
		return int64(len(c.nodes[part.leader].logs[topicName][p].records))
	}
	var hw int64
	for _, n := range part.replicas {
		if !c.nodes[n].up {
			continue
		}
		if end := int64(len(c.nodes[n].logs[topicName][p].records)); end > hw {
			hw = end
		}
	}
	return hw
}

// Tick runs one controller pass on the simulated tick clock: elect leaders
// for leaderless partitions from their live ISR members (epoch bump,
// failover latency measured in ticks), catch lagging live followers up to
// their leader — truncating any log that runs past the leader's high
// watermark first — and re-admit caught-up followers to the ISR. The core
// monitoring loop calls it once per scrape tick, so "election within N
// ticks" and "alert within N ticks" share a clock.
func (c *Cluster) Tick() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Ticks++
	for name, t := range c.topics {
		for p, part := range t.parts {
			c.electLocked(name, part, p)
			c.catchUpLocked(name, part, p)
		}
	}
}

// electLocked fills a leaderless partition's leadership from the live ISR
// (or, with AllowUnclean, the most caught-up live replica).
func (c *Cluster) electLocked(topicName string, part *clusterPart, p int) {
	if part.leader != -1 && c.nodes[part.leader].up {
		return
	}
	if part.leader != -1 {
		// Leader died without CrashNode clearing it (defensive).
		part.leader = -1
		part.lostAtTick = c.stats.Ticks - 1
	}
	newLeader, unclean := -1, false
	// Clean election: first live ISR member in assignment order. ISR
	// members hold identical logs, so assignment order is a deterministic
	// tie-break, not a durability choice.
	for _, n := range part.replicas {
		if c.nodes[n].up && contains(part.isr, n) {
			newLeader = n
			break
		}
	}
	if newLeader == -1 && c.cfg.AllowUnclean {
		// Unclean election: most caught-up live replica, accepting the loss
		// of acknowledged records beyond its log end.
		var best int64 = -1
		for _, n := range part.replicas {
			if !c.nodes[n].up {
				continue
			}
			if end := int64(len(c.nodes[n].logs[topicName][p].records)); end > best {
				best, newLeader, unclean = end, n, true
			}
		}
	}
	if newLeader == -1 {
		return // unavailable until an ISR member (or any replica, unclean) returns
	}
	part.leader = newLeader
	part.epoch++
	if unclean {
		// The new leader defines the log: it alone is in sync until the
		// survivors truncate and catch up.
		part.isr = append(part.isr[:0], newLeader)
		c.stats.UncleanElections++
	}
	c.stats.Elections++
	failover := c.stats.Ticks - part.lostAtTick
	c.stats.LastFailoverTicks = failover
	if failover > c.stats.MaxFailoverTicks {
		c.stats.MaxFailoverTicks = failover
	}
	c.emit(ClusterEvent{Kind: "leader-elected", Topic: topicName, Partition: p, Node: newLeader,
		Epoch: part.epoch, FailoverTicks: failover, Unclean: unclean})
}

// catchUpLocked replicates the leader's suffix to lagging live followers,
// truncates divergent logs to the leader's high watermark, and restores
// caught-up followers to the ISR.
func (c *Cluster) catchUpLocked(topicName string, part *clusterPart, p int) {
	if part.leader == -1 || !c.nodes[part.leader].up {
		return
	}
	leaderLog := c.nodes[part.leader].logs[topicName][p]
	hw := len(leaderLog.records)
	for _, n := range part.replicas {
		if n == part.leader || !c.nodes[n].up {
			continue
		}
		l := c.nodes[n].logs[topicName][p]
		if len(l.records) > hw {
			// The suffix past the leader's high watermark was never
			// acknowledged under the current epoch (it survives only an
			// unclean election); truncate so the replica's log is a prefix
			// of the leader's.
			c.stats.Truncated += len(l.records) - hw
			c.emit(ClusterEvent{Kind: "truncate", Topic: topicName, Partition: p, Node: n, Epoch: part.epoch,
				Detail: fmt.Sprintf("%d records past hw %d", len(l.records)-hw, hw)})
			l.records = l.records[:hw]
		}
		if len(l.records) < hw {
			if c.faultHook != nil {
				if err := c.faultHook("catchup", n); err != nil {
					continue // this round failed; retry next tick
				}
			}
			c.stats.CatchUpRecords += hw - len(l.records)
			l.records = append(l.records, leaderLog.records[len(l.records):hw]...)
		}
		if len(l.records) == hw && !contains(part.isr, n) {
			part.isr = append(part.isr, n)
			sort.Ints(part.isr)
			c.stats.ISRExpands++
			c.emit(ClusterEvent{Kind: "isr-expand", Topic: topicName, Partition: p, Node: n, Epoch: part.epoch})
		}
	}
}

// Stats returns a snapshot of the replication/election counters.
func (c *Cluster) Stats() ClusterStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// NodesUp counts live broker nodes.
func (c *Cluster) NodesUp() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, nd := range c.nodes {
		if nd.up {
			n++
		}
	}
	return n
}

// UnderReplicated counts partitions whose ISR is below the replication
// factor — the canonical Kafka health signal.
func (c *Cluster) UnderReplicated() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, t := range c.topics {
		for _, part := range t.parts {
			if len(part.isr) < c.cfg.Replication {
				n++
			}
		}
	}
	return n
}

// Leaderless counts partitions currently without a live leader.
func (c *Cluster) Leaderless() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, t := range c.topics {
		for _, part := range t.parts {
			if part.leader == -1 || !c.nodes[part.leader].up {
				n++
			}
		}
	}
	return n
}

// State snapshots the whole cluster for /api/cluster and the watch
// dashboard: nodes, per-partition leadership/ISR/high-watermark, and the
// replication counters. Ordering is deterministic (topics sorted,
// partitions in index order).
func (c *Cluster) State() ClusterState {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := ClusterState{Stats: c.stats}
	leading := make([]int, len(c.nodes))
	hosting := make([]int, len(c.nodes))
	names := make([]string, 0, len(c.topics))
	for n := range c.topics {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		t := c.topics[name]
		for p, part := range t.parts {
			ps := PartitionState{
				Topic: name, Partition: p,
				Leader: part.leader, Epoch: part.epoch,
				Replicas:      append([]int(nil), part.replicas...),
				ISR:           append([]int(nil), part.isr...),
				HighWatermark: c.hwLocked(name, part, p),
			}
			if part.leader != -1 && !c.nodes[part.leader].up {
				ps.Leader = -1
			}
			for _, n := range part.replicas {
				ps.ReplicaEnds = append(ps.ReplicaEnds, int64(len(c.nodes[n].logs[name][p].records)))
				hosting[n]++
			}
			if ps.Leader == -1 {
				st.Leaderless++
			} else {
				leading[ps.Leader]++
			}
			if len(part.isr) < c.cfg.Replication {
				st.UnderReplicated++
			}
			st.Partitions = append(st.Partitions, ps)
		}
	}
	for i, n := range c.nodes {
		st.Nodes = append(st.Nodes, NodeState{
			ID: i, Up: n.up, Crashes: n.crashes, Restarts: n.restarts,
			Replicas: hosting[i], Leading: leading[i],
		})
	}
	return st
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
