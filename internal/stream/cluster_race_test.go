package stream

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestClusterConcurrentChaos hammers one cluster from four directions at
// once — producers, a polling/committing consumer, a leader-killing chaos
// goroutine, and the controller tick loop — and then audits the surviving
// log. Run under -race this is the memory-safety proof for the whole
// replication path; the invariant checked afterwards is the durability one:
// every acknowledged produce is readable exactly once by a fresh group.
func TestClusterConcurrentChaos(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Nodes: 3, Replication: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTopic("events", 4); err != nil {
		t.Fatal(err)
	}

	const (
		producers   = 4
		perProducer = 150
	)
	var (
		finite sync.WaitGroup // producers + chaos: run to completion
		loops  sync.WaitGroup // consumer + ticker: run until stop closes
		acked  atomic.Int64
		stop   = make(chan struct{})
	)

	// Producers: keep writing through failovers, retrying the retryable
	// unavailability errors a real client would.
	for pr := 0; pr < producers; pr++ {
		finite.Add(1)
		go func(pr int) {
			defer finite.Done()
			for i := 0; i < perProducer; i++ {
				key := fmt.Sprintf("p%d-%d", pr, i)
				for {
					_, _, err := c.Produce("events", key, []byte(key))
					if err == nil {
						acked.Add(1)
						break
					}
					if !errors.Is(err, ErrNoLeader) && !errors.Is(err, ErrNotEnoughReplicas) {
						t.Errorf("produce %s: %v", key, err)
						return
					}
					c.Tick() // a stuck producer nudges the controller, like a client forcing a metadata refresh
				}
			}
		}(pr)
	}

	// Consumer: poll-then-commit loop on its own group.
	loops.Add(1)
	go func() {
		defer loops.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			recs, err := c.Poll("live", "events", 32)
			if err != nil {
				t.Errorf("poll: %v", err)
				return
			}
			if len(recs) > 0 {
				if err := c.CommitPolled("live", "events"); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}
	}()

	// Chaos: crash whoever currently leads partition 0, tick an election
	// through, restart, and let catch-up run — in a tight loop.
	finite.Add(1)
	go func() {
		defer finite.Done()
		for i := 0; i < 40; i++ {
			leader, _, err := c.LeaderEpoch("events", 0)
			if err != nil {
				t.Errorf("leader lookup: %v", err)
				return
			}
			if leader == -1 {
				c.Tick()
				continue
			}
			if err := c.CrashNode(leader); err != nil {
				continue // lost the race with another state change; fine
			}
			c.Tick()
			if err := c.RestartNode(leader); err != nil {
				t.Errorf("restart %d: %v", leader, err)
				return
			}
			c.Tick()
		}
	}()

	// Controller heartbeat alongside everything else.
	loops.Add(1)
	go func() {
		defer loops.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Tick()
			}
		}
	}()

	finite.Wait()
	close(stop)
	loops.Wait()
	if t.Failed() {
		return
	}

	// Quiesce: restart anything dead, tick until fully replicated.
	for id := 0; id < c.NodeCount(); id++ {
		if !c.NodeUp(id) {
			if err := c.RestartNode(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 8 && (c.UnderReplicated() > 0 || c.Leaderless() > 0); i++ {
		c.Tick()
	}
	if c.UnderReplicated() > 0 || c.Leaderless() > 0 {
		t.Fatalf("cluster did not converge: underReplicated=%d leaderless=%d",
			c.UnderReplicated(), c.Leaderless())
	}

	// Durability audit: every acked record present exactly once.
	seen := make(map[string]int)
	for {
		recs, err := c.Poll("audit", "events", 64)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			break
		}
		for _, r := range recs {
			seen[string(r.Value)]++
		}
		if err := c.CommitPolled("audit", "events"); err != nil {
			t.Fatal(err)
		}
	}
	if int64(len(seen)) != acked.Load() {
		t.Fatalf("audit saw %d distinct records, acked %d", len(seen), acked.Load())
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("record %s appears %d times in the log", k, n)
		}
	}
}
