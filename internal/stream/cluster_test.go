package stream

import (
	"errors"
	"fmt"
	"strconv"
	"testing"
)

// newTestCluster boots a cluster with one topic "events".
func newTestCluster(t *testing.T, cfg ClusterConfig, partitions int) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTopic("events", partitions); err != nil {
		t.Fatal(err)
	}
	return c
}

// produceN appends n keyed records and returns their payloads.
func produceN(t *testing.T, c *Cluster, n int) []string {
	t.Helper()
	var vals []string
	for i := 0; i < n; i++ {
		v := strconv.Itoa(i)
		if _, _, err := c.Produce("events", "k"+v, []byte(v)); err != nil {
			t.Fatalf("produce %d: %v", i, err)
		}
		vals = append(vals, v)
	}
	return vals
}

// drain polls everything a fresh pass can see, committing each batch.
func drain(t *testing.T, c *Cluster, group string) []Record {
	t.Helper()
	var out []Record
	for {
		recs, err := c.Poll(group, "events", 64)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			return out
		}
		out = append(out, recs...)
		if err := c.CommitPolled(group, "events"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestClusterConfigValidation(t *testing.T) {
	for _, cfg := range []ClusterConfig{
		{Nodes: 0, Replication: 1},
		{Nodes: 2, Replication: 3},
		{Nodes: 3, Replication: 2, MinISR: 3},
		{Nodes: 1, Replication: 0},
	} {
		if _, err := NewCluster(cfg); !errors.Is(err, ErrBadCluster) {
			t.Fatalf("NewCluster(%+v) err = %v, want ErrBadCluster", cfg, err)
		}
	}
}

func TestClusterProducePollRoundTrip(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Nodes: 3, Replication: 3}, 4)
	want := produceN(t, c, 20)
	got := drain(t, c, "g")
	if len(got) != len(want) {
		t.Fatalf("polled %d records, want %d", len(got), len(want))
	}
	if lag, _ := c.Lag("g", "events"); lag != 0 {
		t.Fatalf("lag after drain = %d", lag)
	}
}

func TestClusterPollRedeliversUntilCommit(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Nodes: 3, Replication: 3}, 2)
	produceN(t, c, 6)

	first, err := c.Poll("g", "events", 64)
	if err != nil {
		t.Fatal(err)
	}
	again, err := c.Poll("g", "events", 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 6 || len(again) != 6 {
		t.Fatalf("uncommitted re-poll: first %d, again %d, want 6 and 6", len(first), len(again))
	}
	if err := c.CommitPolled("g", "events"); err != nil {
		t.Fatal(err)
	}
	after, err := c.Poll("g", "events", 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 0 {
		t.Fatalf("polled %d records after commit, want 0", len(after))
	}
}

func TestClusterEmptyKeyRoundRobin(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Nodes: 3, Replication: 2}, 4)
	counts := make(map[int]int)
	for i := 0; i < 8; i++ {
		p, _, err := c.Produce("events", "", []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		counts[p]++
	}
	for p := 0; p < 4; p++ {
		if counts[p] != 2 {
			t.Fatalf("empty-key spread = %v, want 2 per partition", counts)
		}
	}
}

func TestBrokerEmptyKeyRoundRobin(t *testing.T) {
	b := newTestBroker(t, 4)
	counts := make(map[int]int)
	for i := 0; i < 8; i++ {
		p, _, err := b.Produce("events", "", []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		counts[p]++
	}
	for p := 0; p < 4; p++ {
		if counts[p] != 2 {
			t.Fatalf("empty-key spread = %v, want 2 per partition", counts)
		}
	}
}

func TestClusterCleanFailoverLosesNothing(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Nodes: 3, Replication: 3}, 1)
	produceN(t, c, 10)

	leader, epoch, err := c.LeaderEpoch("events", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CrashNode(leader); err != nil {
		t.Fatal(err)
	}
	// Leaderless until the controller runs: produce must fail retryably,
	// never ack into the void.
	if _, _, err := c.Produce("events", "k", []byte("x")); !errors.Is(err, ErrNoLeader) {
		t.Fatalf("produce to leaderless partition err = %v, want ErrNoLeader", err)
	}
	c.Tick()
	newLeader, newEpoch, err := c.LeaderEpoch("events", 0)
	if err != nil {
		t.Fatal(err)
	}
	if newLeader == leader || newLeader == -1 {
		t.Fatalf("leader after failover = %d (was %d)", newLeader, leader)
	}
	if newEpoch != epoch+1 {
		t.Fatalf("epoch after failover = %d, want %d", newEpoch, epoch+1)
	}
	if st := c.Stats(); st.Elections != 1 || st.UncleanElections != 0 || st.LastFailoverTicks != 1 {
		t.Fatalf("stats after clean failover = %+v", st)
	}
	// Every acknowledged record survives the failover.
	if got := drain(t, c, "audit"); len(got) != 10 {
		t.Fatalf("post-failover drain = %d records, want 10", len(got))
	}
	// And the partition accepts writes again.
	if _, _, err := c.Produce("events", "k", []byte("x")); err != nil {
		t.Fatalf("produce after election: %v", err)
	}
}

// TestClusterElectionTable is the table-driven election test: ISR shrink to
// one, full-ISR loss (unavailable, not lossy), and stale-epoch fencing.
func TestClusterElectionTable(t *testing.T) {
	failNodes := func(bad ...int) func(string, int) error {
		return func(op string, node int) error {
			for _, b := range bad {
				if node == b && op == "replicate" {
					return fmt.Errorf("injected replication failure on %d", node)
				}
			}
			return nil
		}
	}

	t.Run("isr-shrinks-to-one-and-still-acks", func(t *testing.T) {
		c := newTestCluster(t, ClusterConfig{Nodes: 3, Replication: 3, MinISR: 1}, 1)
		c.SetFaultHook(failNodes(1, 2))
		if _, _, err := c.Produce("events", "k", []byte("x")); err != nil {
			t.Fatalf("minISR=1 produce: %v", err)
		}
		st := c.State().Partitions[0]
		if len(st.ISR) != 1 || st.ISR[0] != 0 {
			t.Fatalf("ISR = %v, want [0]", st.ISR)
		}
		if s := c.Stats(); s.ISRShrinks != 2 {
			t.Fatalf("ISRShrinks = %d, want 2", s.ISRShrinks)
		}
		if c.UnderReplicated() != 1 {
			t.Fatalf("UnderReplicated = %d, want 1", c.UnderReplicated())
		}
		// Clearing the hook lets the next tick catch both followers up and
		// restore full replication.
		c.SetFaultHook(nil)
		c.Tick()
		if c.UnderReplicated() != 0 {
			t.Fatalf("UnderReplicated after catch-up = %d, want 0", c.UnderReplicated())
		}
	})

	t.Run("min-isr-two-rejects-without-appending", func(t *testing.T) {
		c := newTestCluster(t, ClusterConfig{Nodes: 3, Replication: 3, MinISR: 2}, 1)
		c.SetFaultHook(failNodes(1, 2))
		_, _, err := c.Produce("events", "k", []byte("x"))
		if !errors.Is(err, ErrNotEnoughReplicas) {
			t.Fatalf("err = %v, want ErrNotEnoughReplicas", err)
		}
		st := c.State().Partitions[0]
		if st.HighWatermark != 0 {
			t.Fatalf("rejected produce advanced the log: hw = %d", st.HighWatermark)
		}
		if len(st.ISR) != 3 {
			t.Fatalf("rejected produce shrank the ISR: %v", st.ISR)
		}
		// One surviving follower is enough for MinISR=2.
		c.SetFaultHook(failNodes(2))
		if _, _, err := c.Produce("events", "k", []byte("x")); err != nil {
			t.Fatalf("produce with 2 survivors: %v", err)
		}
	})

	t.Run("full-isr-loss-is-unavailable-then-recovers", func(t *testing.T) {
		c := newTestCluster(t, ClusterConfig{Nodes: 3, Replication: 3}, 1)
		produceN(t, c, 5)
		for n := 0; n < 3; n++ {
			if err := c.CrashNode(n); err != nil {
				t.Fatal(err)
			}
		}
		c.Tick()
		// No live ISR member: the partition must stay unavailable rather than
		// silently electing nothing or losing data.
		if _, _, err := c.Produce("events", "k", []byte("x")); !errors.Is(err, ErrNoLeader) {
			t.Fatalf("produce err = %v, want ErrNoLeader", err)
		}
		if st := c.Stats(); st.Elections != 0 {
			t.Fatalf("elected a leader with no live ISR member: %+v", st)
		}
		// One ISR member returns: clean election, zero loss.
		if err := c.RestartNode(1); err != nil {
			t.Fatal(err)
		}
		c.Tick()
		leader, _, _ := c.LeaderEpoch("events", 0)
		if leader != 1 {
			t.Fatalf("leader = %d, want restarted node 1", leader)
		}
		if got := drain(t, c, "audit"); len(got) != 5 {
			t.Fatalf("drain after recovery = %d records, want 5", len(got))
		}
	})

	t.Run("stale-epoch-produce-is-fenced", func(t *testing.T) {
		c := newTestCluster(t, ClusterConfig{Nodes: 3, Replication: 3}, 1)
		leader, epoch, err := c.LeaderEpoch("events", 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.ProduceWithEpoch("events", 0, epoch, "k", []byte("x"), nil); err != nil {
			t.Fatalf("current-epoch produce: %v", err)
		}
		if _, err := c.ProduceWithEpoch("events", 0, epoch-1, "k", []byte("x"), nil); !errors.Is(err, ErrStaleEpoch) {
			t.Fatalf("stale produce err = %v, want ErrStaleEpoch", err)
		}
		// After a failover the old leader's cached epoch is fenced too.
		if err := c.CrashNode(leader); err != nil {
			t.Fatal(err)
		}
		c.Tick()
		if _, err := c.ProduceWithEpoch("events", 0, epoch, "k", []byte("x"), nil); !errors.Is(err, ErrStaleEpoch) {
			t.Fatalf("pre-failover epoch err = %v, want ErrStaleEpoch", err)
		}
		if s := c.Stats(); s.StaleProduces != 2 {
			t.Fatalf("StaleProduces = %d, want 2", s.StaleProduces)
		}
	})
}

func TestClusterRestartCatchUpAndISRRejoin(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Nodes: 3, Replication: 3}, 1)
	produceN(t, c, 3)
	leader, _, _ := c.LeaderEpoch("events", 0)
	follower := (leader + 1) % 3
	if err := c.CrashNode(follower); err != nil {
		t.Fatal(err)
	}
	// Writes while the follower is down shrink the ISR around it.
	for i := 0; i < 4; i++ {
		if _, _, err := c.Produce("events", "k", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if c.UnderReplicated() != 1 {
		t.Fatalf("UnderReplicated = %d, want 1", c.UnderReplicated())
	}
	if err := c.RestartNode(follower); err != nil {
		t.Fatal(err)
	}
	c.Tick()
	st := c.State().Partitions[0]
	if len(st.ISR) != 3 {
		t.Fatalf("ISR after catch-up = %v, want all three", st.ISR)
	}
	for i, end := range st.ReplicaEnds {
		if end != st.HighWatermark {
			t.Fatalf("replica %d end = %d, hw = %d", i, end, st.HighWatermark)
		}
	}
	if s := c.Stats(); s.CatchUpRecords != 4 || s.ISRExpands != 1 {
		t.Fatalf("stats = %+v, want 4 caught-up records and 1 rejoin", s)
	}
}

func TestClusterUncleanElectionTruncates(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Nodes: 2, Replication: 2, AllowUnclean: true}, 1)
	produceN(t, c, 2)
	leader, _, _ := c.LeaderEpoch("events", 0)
	follower := 1 - leader
	// Drop the follower from the ISR, then keep writing: the leader's log
	// runs ahead of the follower's.
	c.SetFaultHook(func(op string, node int) error {
		if op == "replicate" && node == follower {
			return errors.New("injected lag")
		}
		return nil
	})
	for i := 0; i < 3; i++ {
		if _, _, err := c.Produce("events", "k", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	c.SetFaultHook(nil)
	if err := c.CrashNode(leader); err != nil {
		t.Fatal(err)
	}
	c.Tick()
	newLeader, _, _ := c.LeaderEpoch("events", 0)
	if newLeader != follower {
		t.Fatalf("unclean election picked %d, want lagging survivor %d", newLeader, follower)
	}
	st := c.Stats()
	if st.UncleanElections != 1 {
		t.Fatalf("UncleanElections = %d, want 1", st.UncleanElections)
	}
	// The new leader never saw the last 3 acked records: documented loss.
	if hw := c.State().Partitions[0].HighWatermark; hw != 2 {
		t.Fatalf("hw after unclean election = %d, want 2", hw)
	}
	// The old leader returns with the longer log and must truncate to the
	// new leader's high watermark before rejoining the ISR.
	if err := c.RestartNode(leader); err != nil {
		t.Fatal(err)
	}
	c.Tick()
	if s := c.Stats(); s.Truncated != 3 {
		t.Fatalf("Truncated = %d, want 3", s.Truncated)
	}
	final := c.State().Partitions[0]
	if len(final.ISR) != 2 {
		t.Fatalf("ISR after truncation = %v, want both", final.ISR)
	}
	for i, end := range final.ReplicaEnds {
		if end != final.HighWatermark {
			t.Fatalf("replica %d end = %d, hw = %d", i, end, final.HighWatermark)
		}
	}
	// A committed consumer position past the truncated end clamps instead of
	// erroring forever.
	if got := drain(t, c, "late"); len(got) != 2 {
		t.Fatalf("drain after truncation = %d, want 2", len(got))
	}
}

func TestClusterConsumerResumesAcrossFailover(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Nodes: 3, Replication: 3}, 2)
	var want []string
	for i := 0; i < 12; i++ {
		v := strconv.Itoa(i)
		if _, _, err := c.Produce("events", "k"+v, []byte(v)); err != nil {
			t.Fatal(err)
		}
		want = append(want, v)
	}
	// Consume part of the log, commit, then lose a leader.
	first, err := c.Poll("g", "events", 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CommitPolled("g", "events"); err != nil {
		t.Fatal(err)
	}
	leader, _, _ := c.LeaderEpoch("events", 0)
	if err := c.CrashNode(leader); err != nil {
		t.Fatal(err)
	}
	c.Tick()
	rest := drain(t, c, "g")
	seen := make(map[string]int)
	for _, r := range append(first, rest...) {
		seen[string(r.Value)]++
	}
	for _, v := range want {
		if seen[v] != 1 {
			t.Fatalf("record %q seen %d times across failover, want exactly once (seen=%v)", v, seen[v], seen)
		}
	}
}

func TestClusterCrashRestartValidation(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Nodes: 2, Replication: 2}, 1)
	if err := c.CrashNode(9); !errors.Is(err, ErrBadNode) {
		t.Fatalf("crash out of range err = %v", err)
	}
	if err := c.RestartNode(0); !errors.Is(err, ErrNodeUp) {
		t.Fatalf("restart up node err = %v", err)
	}
	if err := c.CrashNode(0); err != nil {
		t.Fatal(err)
	}
	if err := c.CrashNode(0); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("double crash err = %v", err)
	}
	if c.NodesUp() != 1 || c.NodeUp(0) || !c.NodeUp(1) {
		t.Fatalf("liveness view wrong: up=%d", c.NodesUp())
	}
}
