package stream_test

import (
	"fmt"

	"repro/internal/stream"
)

// Example demonstrates the broker's produce/consume cycle with a consumer
// group, the pattern every collector→storage hop in the pipeline uses.
func Example() {
	broker := stream.NewBroker()
	if err := broker.CreateTopic("tweets", 2); err != nil {
		fmt.Println("create:", err)
		return
	}
	for _, text := range []string{"gunshots on plank rd", "traffic fine on i-10"} {
		if _, _, err := broker.Produce("tweets", "collector-1", []byte(text)); err != nil {
			fmt.Println("produce:", err)
			return
		}
	}
	records, err := broker.Poll("storage-tier", "tweets", 10)
	if err != nil {
		fmt.Println("poll:", err)
		return
	}
	for _, r := range records {
		fmt.Println(string(r.Value))
	}
	lag, _ := broker.Lag("storage-tier", "tweets")
	fmt.Println("remaining lag:", lag)
	// Output:
	// gunshots on plank rd
	// traffic fine on i-10
	// remaining lag: 0
}
