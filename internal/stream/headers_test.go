package stream

import (
	"testing"
)

func TestProduceHHeadersRoundTrip(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("frames", 2); err != nil {
		t.Fatal(err)
	}
	headers := map[string]string{"x-trace-id": "t-1", "x-span-id": "0", "camera": "cam-3"}
	if _, _, err := b.ProduceH("frames", "cam-3", []byte("payload"), headers); err != nil {
		t.Fatal(err)
	}
	// Mutating the producer's map after the fact must not corrupt the log.
	headers["x-trace-id"] = "tampered"
	delete(headers, "camera")

	recs, err := b.Poll("g", "frames", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("polled %d records", len(recs))
	}
	got := recs[0].Headers
	if got["x-trace-id"] != "t-1" || got["camera"] != "cam-3" {
		t.Fatalf("headers = %v, want the values at produce time", got)
	}
}

func TestProduceWithoutHeadersStaysNil(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("plain", 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Produce("plain", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.ProduceH("plain", "k", []byte("v"), map[string]string{}); err != nil {
		t.Fatal(err)
	}
	recs, err := b.Poll("g", "plain", 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Headers != nil {
			t.Fatalf("headerless record allocated %v", r.Headers)
		}
	}
}
