package stream

import (
	"time"

	"repro/internal/telemetry"
)

// BusMetrics holds the pre-registered instruments a MeteredBus records
// into. Instruments are created once at wiring time so the produce/poll hot
// path never touches the registry.
type BusMetrics struct {
	Produces      *telemetry.Counter
	ProduceErrors *telemetry.Counter
	ProducedBytes *telemetry.Counter
	Polls         *telemetry.Counter
	PollErrors    *telemetry.Counter
	PolledRecords *telemetry.Counter

	ProduceSeconds *telemetry.Histogram
	PollSeconds    *telemetry.Histogram
}

// NewBusMetrics registers the cityinfra_broker_* metric family on r.
func NewBusMetrics(r *telemetry.Registry) *BusMetrics {
	return &BusMetrics{
		Produces:      r.Counter("cityinfra_broker_produce_total", "records produced to the broker"),
		ProduceErrors: r.Counter("cityinfra_broker_produce_errors_total", "failed produce calls"),
		ProducedBytes: r.Counter("cityinfra_broker_produced_bytes_total", "payload bytes produced"),
		Polls:         r.Counter("cityinfra_broker_poll_total", "poll calls"),
		PollErrors:    r.Counter("cityinfra_broker_poll_errors_total", "failed poll calls"),
		PolledRecords: r.Counter("cityinfra_broker_polled_records_total", "records handed to consumers"),
		ProduceSeconds: r.Histogram("cityinfra_broker_produce_seconds",
			"produce call latency in seconds", nil),
		PollSeconds: r.Histogram("cityinfra_broker_poll_seconds",
			"poll call latency in seconds", nil),
	}
}

// MeteredBus decorates any Bus with telemetry, so the ingestion pipelines
// keep metering whether they talk to the raw broker or to a fault-injecting
// wrapper — the call sites never know the backend.
type MeteredBus struct {
	next Bus
	m    *BusMetrics
	now  func() time.Time
}

var _ Bus = (*MeteredBus)(nil)

// NewMeteredBus wraps next. A nil clock means time.Now.
func NewMeteredBus(next Bus, m *BusMetrics, now func() time.Time) *MeteredBus {
	if now == nil {
		now = time.Now
	}
	return &MeteredBus{next: next, m: m, now: now}
}

// Unwrap returns the decorated bus.
func (b *MeteredBus) Unwrap() Bus { return b.next }

// Produce forwards to the underlying bus, recording latency and outcome.
func (b *MeteredBus) Produce(topicName, key string, value []byte) (int, int64, error) {
	return b.ProduceH(topicName, key, value, nil)
}

// ProduceH forwards to the underlying bus, recording latency and outcome.
func (b *MeteredBus) ProduceH(topicName, key string, value []byte, headers map[string]string) (int, int64, error) {
	start := b.now()
	p, off, err := b.next.ProduceH(topicName, key, value, headers)
	b.m.ProduceSeconds.Observe(b.now().Sub(start).Seconds())
	if err != nil {
		b.m.ProduceErrors.Inc()
		return p, off, err
	}
	b.m.Produces.Inc()
	b.m.ProducedBytes.Add(len(value))
	return p, off, nil
}

// Poll forwards to the underlying bus, recording latency, outcome, and the
// number of records handed out.
func (b *MeteredBus) Poll(groupName, topicName string, max int) ([]Record, error) {
	start := b.now()
	recs, err := b.next.Poll(groupName, topicName, max)
	b.m.PollSeconds.Observe(b.now().Sub(start).Seconds())
	if err != nil {
		b.m.PollErrors.Inc()
		return recs, err
	}
	b.m.Polls.Inc()
	b.m.PolledRecords.Add(len(recs))
	return recs, nil
}

// CommitPolled forwards to the underlying bus. Commits are local offset
// metadata updates, not broker round trips, so they are not timed.
func (b *MeteredBus) CommitPolled(groupName, topicName string) error {
	return b.next.CommitPolled(groupName, topicName)
}
