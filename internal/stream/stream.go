// Package stream implements a partitioned, offset-addressed publish/subscribe
// log with consumer groups — the streaming backbone ("real-time data
// gathering" plus "streaming processing" in the paper's software layer) that
// connects collectors, storage, and the analysis servers in Fig. 4.
//
// The broker is an in-process simulation of a Kafka-style system: topics are
// split into partitions, records within a partition are totally ordered and
// addressed by offset, keys hash to partitions so per-key order is
// preserved, and consumer groups balance partitions across members with
// committed offsets.
package stream

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"
)

// Sentinel errors.
var (
	ErrTopicExists    = errors.New("stream: topic already exists")
	ErrUnknownTopic   = errors.New("stream: unknown topic")
	ErrBadPartition   = errors.New("stream: partition out of range")
	ErrOffsetOutOfLog = errors.New("stream: offset beyond log end")
)

// Bus is the produce/poll surface the ingestion pipelines depend on.
// *Broker implements it directly; decorators (fault injection, metering)
// wrap it without the pipelines knowing.
type Bus interface {
	Produce(topicName, key string, value []byte) (partitionID int, offset int64, err error)
	// ProduceH is Produce with per-record headers — the metadata channel
	// that carries trace context (and other small annotations) across the
	// broker hop to whoever polls the record.
	ProduceH(topicName, key string, value []byte, headers map[string]string) (partitionID int, offset int64, err error)
	Poll(groupName, topicName string, max int) ([]Record, error)
	// CommitPolled advances the group's committed offsets over what the
	// last Poll for this topic returned. On the replicated Cluster this
	// completes the poll-then-commit (at-least-once) flow; the legacy
	// single-node Broker commits inside Poll, so there it is a validated
	// no-op kept for interface compatibility.
	CommitPolled(groupName, topicName string) error
}

// Record is one message in a partition log.
type Record struct {
	Topic     string
	Partition int
	Offset    int64
	Key       string
	Value     []byte
	// Headers carry per-record metadata end to end; the broker copies the
	// map on produce so later mutation by the producer cannot corrupt the
	// log.
	Headers map[string]string
	Time    time.Time
}

type partition struct {
	records []Record
}

type topic struct {
	name       string
	partitions []*partition
	// rr cycles empty-key records across partitions (see Produce).
	rr uint64
}

type groupState struct {
	// committed offset per topic/partition.
	offsets map[string][]int64
}

// Broker is an in-memory multi-topic log. It is safe for concurrent use.
type Broker struct {
	mu     sync.RWMutex
	topics map[string]*topic
	groups map[string]*groupState
	now    func() time.Time
}

var _ Bus = (*Broker)(nil)

// NewBroker creates an empty broker.
func NewBroker() *Broker {
	return &Broker{
		topics: make(map[string]*topic),
		groups: make(map[string]*groupState),
		now:    time.Now,
	}
}

// SetClock overrides the broker's clock (tests and simulation).
func (b *Broker) SetClock(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
}

// CreateTopic registers a topic with the given partition count.
func (b *Broker) CreateTopic(name string, partitions int) error {
	if partitions <= 0 {
		return fmt.Errorf("%w: %d partitions", ErrBadPartition, partitions)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.topics[name]; ok {
		return fmt.Errorf("%w: %s", ErrTopicExists, name)
	}
	t := &topic{name: name, partitions: make([]*partition, partitions)}
	for i := range t.partitions {
		t.partitions[i] = &partition{}
	}
	b.topics[name] = t
	return nil
}

// Topics lists topic names in sorted order.
func (b *Broker) Topics() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	names := make([]string, 0, len(b.topics))
	for n := range b.topics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Partitions returns the partition count for a topic.
func (b *Broker) Partitions(topicName string) (int, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	t, ok := b.topics[topicName]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownTopic, topicName)
	}
	return len(t.partitions), nil
}

func partitionFor(key string, n int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// Produce appends a record, routing non-empty keys by hash so per-key order
// is preserved within a partition. Empty keys are routed round-robin across
// partitions — they used to hash together onto a single partition, hot-
// spotting it — which means empty-key records carry no relative ordering
// guarantee at all; callers that need ordering must key their records.
// It returns the assigned partition and offset.
func (b *Broker) Produce(topicName, key string, value []byte) (partitionID int, offset int64, err error) {
	return b.ProduceH(topicName, key, value, nil)
}

// ProduceH appends a record with headers, copying both the value and the
// header map into the log.
func (b *Broker) ProduceH(topicName, key string, value []byte, headers map[string]string) (partitionID int, offset int64, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.topics[topicName]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %s", ErrUnknownTopic, topicName)
	}
	var p int
	if key == "" {
		p = int(t.rr % uint64(len(t.partitions)))
		t.rr++
	} else {
		p = partitionFor(key, len(t.partitions))
	}
	part := t.partitions[p]
	off := int64(len(part.records))
	v := make([]byte, len(value))
	copy(v, value)
	var h map[string]string
	if len(headers) > 0 {
		h = make(map[string]string, len(headers))
		for k, val := range headers {
			h[k] = val
		}
	}
	part.records = append(part.records, Record{
		Topic: topicName, Partition: p, Offset: off, Key: key, Value: v, Headers: h, Time: b.now(),
	})
	return p, off, nil
}

// Fetch reads up to max records from a partition starting at offset.
// Fetching exactly at the log end returns an empty slice (not an error);
// fetching beyond it is an error.
func (b *Broker) Fetch(topicName string, partitionID int, offset int64, max int) ([]Record, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	t, ok := b.topics[topicName]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownTopic, topicName)
	}
	if partitionID < 0 || partitionID >= len(t.partitions) {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadPartition, partitionID, len(t.partitions))
	}
	part := t.partitions[partitionID]
	end := int64(len(part.records))
	if offset > end {
		return nil, fmt.Errorf("%w: offset %d, log end %d", ErrOffsetOutOfLog, offset, end)
	}
	if offset == end || max <= 0 {
		return nil, nil
	}
	hi := offset + int64(max)
	if hi > end {
		hi = end
	}
	out := make([]Record, hi-offset)
	copy(out, part.records[offset:hi])
	return out, nil
}

// EndOffset returns the next offset to be written to a partition.
func (b *Broker) EndOffset(topicName string, partitionID int) (int64, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	t, ok := b.topics[topicName]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownTopic, topicName)
	}
	if partitionID < 0 || partitionID >= len(t.partitions) {
		return 0, fmt.Errorf("%w: %d", ErrBadPartition, partitionID)
	}
	return int64(len(t.partitions[partitionID].records)), nil
}

func (b *Broker) group(name string) *groupState {
	g, ok := b.groups[name]
	if !ok {
		g = &groupState{offsets: make(map[string][]int64)}
		b.groups[name] = g
	}
	return g
}

// Commit stores a consumer group's committed offset for a partition.
func (b *Broker) Commit(groupName, topicName string, partitionID int, offset int64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.topics[topicName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTopic, topicName)
	}
	if partitionID < 0 || partitionID >= len(t.partitions) {
		return fmt.Errorf("%w: %d", ErrBadPartition, partitionID)
	}
	g := b.group(groupName)
	offs, ok := g.offsets[topicName]
	if !ok {
		offs = make([]int64, len(t.partitions))
		g.offsets[topicName] = offs
	}
	offs[partitionID] = offset
	return nil
}

// Committed returns a group's committed offset for a partition (0 when the
// group has never committed).
func (b *Broker) Committed(groupName, topicName string, partitionID int) (int64, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	t, ok := b.topics[topicName]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownTopic, topicName)
	}
	if partitionID < 0 || partitionID >= len(t.partitions) {
		return 0, fmt.Errorf("%w: %d", ErrBadPartition, partitionID)
	}
	g, ok := b.groups[groupName]
	if !ok {
		return 0, nil
	}
	offs, ok := g.offsets[topicName]
	if !ok {
		return 0, nil
	}
	return offs[partitionID], nil
}

// Poll reads up to max uncommitted records for a consumer group across all
// partitions of a topic and advances the committed offsets past what it
// returns (at-most-once semantics, sufficient for the pipeline simulation).
func (b *Broker) Poll(groupName, topicName string, max int) ([]Record, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.topics[topicName]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownTopic, topicName)
	}
	g := b.group(groupName)
	offs, ok := g.offsets[topicName]
	if !ok {
		offs = make([]int64, len(t.partitions))
		g.offsets[topicName] = offs
	}
	var out []Record
	for p, part := range t.partitions {
		if len(out) >= max {
			break
		}
		start := offs[p]
		end := int64(len(part.records))
		for o := start; o < end && len(out) < max; o++ {
			out = append(out, part.records[o])
			offs[p] = o + 1
		}
	}
	return out, nil
}

// CommitPolled satisfies Bus. The single-node Broker commits inside Poll
// (at-most-once), so there is nothing left to commit here; the call only
// validates the topic. The replicated Cluster implements the real
// poll-then-commit flow.
func (b *Broker) CommitPolled(groupName, topicName string) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if _, ok := b.topics[topicName]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTopic, topicName)
	}
	return nil
}

// Lag returns the total number of records a group has not yet consumed
// across all partitions of a topic.
func (b *Broker) Lag(groupName, topicName string) (int64, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	t, ok := b.topics[topicName]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownTopic, topicName)
	}
	var lag int64
	g := b.groups[groupName]
	for p, part := range t.partitions {
		end := int64(len(part.records))
		var committed int64
		if g != nil {
			if offs, ok := g.offsets[topicName]; ok {
				committed = offs[p]
			}
		}
		lag += end - committed
	}
	return lag, nil
}
