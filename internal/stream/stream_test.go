package stream

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"testing/quick"
)

func newTestBroker(t *testing.T, partitions int) *Broker {
	t.Helper()
	b := NewBroker()
	if err := b.CreateTopic("events", partitions); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCreateTopicErrors(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("t", 0); !errors.Is(err, ErrBadPartition) {
		t.Fatalf("zero partitions err = %v", err)
	}
	if err := b.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("t", 2); !errors.Is(err, ErrTopicExists) {
		t.Fatalf("duplicate err = %v", err)
	}
	if _, err := b.Partitions("missing"); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("unknown topic err = %v", err)
	}
}

func TestProduceFetchRoundTrip(t *testing.T) {
	b := newTestBroker(t, 1)
	for i := 0; i < 5; i++ {
		p, off, err := b.Produce("events", "k", []byte(strconv.Itoa(i)))
		if err != nil {
			t.Fatal(err)
		}
		if p != 0 || off != int64(i) {
			t.Fatalf("produce %d: partition=%d offset=%d", i, p, off)
		}
	}
	recs, err := b.Fetch("events", 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[0].Value) != "1" || string(recs[1].Value) != "2" {
		t.Fatalf("fetch = %v", recs)
	}
	// Fetch at end is empty, not error.
	end, _ := b.EndOffset("events", 0)
	empty, err := b.Fetch("events", 0, end, 10)
	if err != nil || len(empty) != 0 {
		t.Fatalf("fetch at end = %v, %v", empty, err)
	}
	if _, err := b.Fetch("events", 0, end+1, 1); !errors.Is(err, ErrOffsetOutOfLog) {
		t.Fatalf("beyond-end err = %v", err)
	}
	if _, err := b.Fetch("events", 5, 0, 1); !errors.Is(err, ErrBadPartition) {
		t.Fatalf("bad partition err = %v", err)
	}
}

func TestKeyOrderingWithinPartition(t *testing.T) {
	b := newTestBroker(t, 8)
	const perKey = 20
	keys := []string{"camera-1", "camera-2", "camera-3", "camera-4"}
	for i := 0; i < perKey; i++ {
		for _, k := range keys {
			if _, _, err := b.Produce("events", k, []byte(fmt.Sprintf("%s:%d", k, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	// All records of one key land in one partition, in production order.
	for _, k := range keys {
		var seq []string
		n, _ := b.Partitions("events")
		for p := 0; p < n; p++ {
			end, _ := b.EndOffset("events", p)
			recs, err := b.Fetch("events", p, 0, int(end))
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range recs {
				if r.Key == k {
					seq = append(seq, string(r.Value))
				}
			}
		}
		if len(seq) != perKey {
			t.Fatalf("key %s: %d records across partitions, want %d in one", k, len(seq), perKey)
		}
		for i, v := range seq {
			if v != fmt.Sprintf("%s:%d", k, i) {
				t.Fatalf("key %s out of order at %d: %s", k, i, v)
			}
		}
	}
}

func TestConsumerGroupPollAndLag(t *testing.T) {
	b := newTestBroker(t, 4)
	const n = 40
	for i := 0; i < n; i++ {
		if _, _, err := b.Produce("events", strconv.Itoa(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	lag, err := b.Lag("g1", "events")
	if err != nil {
		t.Fatal(err)
	}
	if lag != n {
		t.Fatalf("initial lag = %d", lag)
	}
	seen := 0
	for {
		recs, err := b.Poll("g1", "events", 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			break
		}
		seen += len(recs)
	}
	if seen != n {
		t.Fatalf("group consumed %d, want %d", seen, n)
	}
	lag, _ = b.Lag("g1", "events")
	if lag != 0 {
		t.Fatalf("final lag = %d", lag)
	}
	// A different group sees everything again.
	lag2, _ := b.Lag("g2", "events")
	if lag2 != n {
		t.Fatalf("fresh group lag = %d", lag2)
	}
}

func TestCommitAndCommitted(t *testing.T) {
	b := newTestBroker(t, 2)
	if err := b.Commit("g", "events", 1, 5); err != nil {
		t.Fatal(err)
	}
	off, err := b.Committed("g", "events", 1)
	if err != nil {
		t.Fatal(err)
	}
	if off != 5 {
		t.Fatalf("committed = %d", off)
	}
	if off, _ := b.Committed("g", "events", 0); off != 0 {
		t.Fatalf("uncommitted partition = %d", off)
	}
	if err := b.Commit("g", "missing", 0, 1); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("err = %v", err)
	}
	if err := b.Commit("g", "events", 9, 1); !errors.Is(err, ErrBadPartition) {
		t.Fatalf("err = %v", err)
	}
}

func TestProduceIsolatesValueBuffer(t *testing.T) {
	b := newTestBroker(t, 1)
	buf := []byte("original")
	if _, _, err := b.Produce("events", "k", buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "mutated!")
	recs, _ := b.Fetch("events", 0, 0, 1)
	if string(recs[0].Value) != "original" {
		t.Fatal("broker must copy the value at the boundary")
	}
}

func TestConcurrentProducersConsistent(t *testing.T) {
	b := newTestBroker(t, 4)
	const producers, each = 8, 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, _, err := b.Produce("events", strconv.Itoa(p), nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	total := int64(0)
	n, _ := b.Partitions("events")
	for p := 0; p < n; p++ {
		end, _ := b.EndOffset("events", p)
		total += end
	}
	if total != producers*each {
		t.Fatalf("total records = %d, want %d", total, producers*each)
	}
}

// Property: offsets within a partition are dense, starting at 0.
func TestOffsetsDenseProperty(t *testing.T) {
	f := func(keys []string) bool {
		if len(keys) > 200 {
			keys = keys[:200]
		}
		b := NewBroker()
		if err := b.CreateTopic("t", 3); err != nil {
			return false
		}
		for _, k := range keys {
			if _, _, err := b.Produce("t", k, nil); err != nil {
				return false
			}
		}
		for p := 0; p < 3; p++ {
			end, err := b.EndOffset("t", p)
			if err != nil {
				return false
			}
			recs, err := b.Fetch("t", p, 0, int(end))
			if err != nil {
				return false
			}
			for i, r := range recs {
				if r.Offset != int64(i) || r.Partition != p {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestConsumerGroupRebalance: a second member joining a group mid-consumption
// must pick up exactly where the group's committed offsets stand — between
// the two members every record is delivered exactly once, nothing is
// re-polled, and the group's committed offsets reach the log end.
func TestConsumerGroupRebalance(t *testing.T) {
	const partitions, records = 4, 200
	b := newTestBroker(t, partitions)
	for i := 0; i < records; i++ {
		if _, _, err := b.Produce("events", fmt.Sprintf("key-%d", i), []byte(strconv.Itoa(i))); err != nil {
			t.Fatal(err)
		}
	}

	seen := make(map[string]string) // "partition/offset" → which member got it
	drain := func(member string, max int) int {
		recs, err := b.Poll("g", "events", max)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			key := fmt.Sprintf("%d/%d", r.Partition, r.Offset)
			if prev, dup := seen[key]; dup {
				t.Fatalf("record %s delivered to both %s and %s", key, prev, member)
			}
			seen[key] = member
		}
		return len(recs)
	}

	// Member A consumes part of the backlog alone.
	got := drain("member-a", 70)
	if got != 70 {
		t.Fatalf("member-a first drain = %d", got)
	}
	// Member B joins the same group mid-consumption; both keep polling in
	// alternation until the group has drained the topic.
	for {
		n := drain("member-b", 25)
		n += drain("member-a", 25)
		if n == 0 {
			break
		}
	}

	if len(seen) != records {
		t.Fatalf("group consumed %d distinct records, want %d", len(seen), records)
	}
	for p := 0; p < partitions; p++ {
		end, err := b.EndOffset("events", p)
		if err != nil {
			t.Fatal(err)
		}
		committed, err := b.Committed("g", "events", p)
		if err != nil {
			t.Fatal(err)
		}
		if committed != end {
			t.Fatalf("partition %d committed = %d, end = %d", p, committed, end)
		}
	}
	// A third poll after the rebalance-drain re-delivers nothing.
	if recs, err := b.Poll("g", "events", records); err != nil || len(recs) != 0 {
		t.Fatalf("post-drain poll = %d records, err %v", len(recs), err)
	}
}
