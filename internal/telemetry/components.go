package telemetry

import "strings"

// Event component names. Every emitter in the stack logs under one of these
// constants (possibly extended with a "/sub" segment via Component), and the
// incident correlation scorer classifies events by the same constants — a
// single vocabulary, so emitters and the scorer cannot drift apart.
const (
	// CompBreaker marks circuit-breaker state transitions.
	CompBreaker = "breaker"
	// CompHealer marks HDFS re-replication supervisor activity.
	CompHealer = "healer"
	// CompBroker marks broker-cluster lifecycle events (crash, election,
	// ISR changes, truncation).
	CompBroker = "broker"
	// CompDeadLetter marks dead-letter quarantines. Emitters append the
	// failing stage — Component(CompDeadLetter, stage) — so the scorer can
	// attribute the loss to the backend behind that stage.
	CompDeadLetter = "deadletter"
	// CompChaos marks fault-injector enable/disable markers.
	CompChaos = "chaos"
	// CompAlerts marks alert-rule lifecycle transitions.
	CompAlerts = "tsdb/alerts"
	// CompControl marks adaptive-controller actions.
	CompControl = "control"
	// CompFrames marks frame-pipeline operational notes (deferred drains).
	CompFrames = "frames"
	// CompHBase prefixes HBase table events: Component(CompHBase, table).
	CompHBase = "hbase"
	// CompIncident marks incident open/resolve markers in timelines.
	CompIncident = "incident"
)

// Backend component names used by the dependency graph and suspect ranking.
// CompBroker and CompHBase above double as backend names; these name the
// remaining storage tiers, which have no event emitters of their own (their
// failures surface as dead letters attributed via the quarantine stage).
const (
	// CompHDFS is the distributed-file-system tier.
	CompHDFS = "hdfs"
	// CompDocstore is the document-store tier.
	CompDocstore = "docstore"
)

// Component joins a root component name with a sub-component, e.g.
// Component(CompDeadLetter, "hbase") == "deadletter/hbase".
func Component(root, sub string) string {
	return root + "/" + sub
}

// ComponentRoot returns the first path segment of a component name:
// ComponentRoot("deadletter/hbase") == CompDeadLetter.
func ComponentRoot(c string) string {
	if i := strings.IndexByte(c, '/'); i >= 0 {
		return c[:i]
	}
	return c
}

// ComponentSub returns the path remainder after the root segment, or ""
// when the component has no sub-segment.
func ComponentSub(c string) string {
	if i := strings.IndexByte(c, '/'); i >= 0 {
		return c[i+1:]
	}
	return ""
}
