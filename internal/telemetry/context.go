package telemetry

import (
	"strconv"
	"time"
)

// Header keys carrying trace context across tier boundaries. They ride in
// flume event headers and stream record headers — the only metadata channels
// that survive the broker hop — so a consumer on the far side can continue
// the producer's trace instead of starting a disconnected one.
const (
	HeaderTraceID = "x-trace-id"
	HeaderSpanID  = "x-span-id"
)

// TraceContext identifies a position inside a trace — the trace id plus the
// span that should parent whatever happens on the far side of a boundary.
// It is what Inject writes into headers and Extract reads back.
type TraceContext struct {
	TraceID string
	SpanID  int
}

// Valid reports whether the context can parent remote spans.
func (tc TraceContext) Valid() bool { return tc.TraceID != "" && tc.SpanID >= 0 }

// Inject writes the context into a header map, allocating one when h is nil,
// and returns the map. Invalid contexts leave h untouched.
func (tc TraceContext) Inject(h map[string]string) map[string]string {
	if !tc.Valid() {
		return h
	}
	if h == nil {
		h = make(map[string]string, 2)
	}
	h[HeaderTraceID] = tc.TraceID
	h[HeaderSpanID] = strconv.Itoa(tc.SpanID)
	return h
}

// Extract reads a trace context from a header map. A missing or negative
// span id with a present trace id falls back to span 0 (the root), so a
// partially propagated context still attaches rather than orphaning.
func Extract(h map[string]string) (TraceContext, bool) {
	id := h[HeaderTraceID]
	if id == "" {
		return TraceContext{}, false
	}
	sid := 0
	if raw := h[HeaderSpanID]; raw != "" {
		if n, err := strconv.Atoi(raw); err == nil && n >= 0 {
			sid = n
		}
	}
	return TraceContext{TraceID: id, SpanID: sid}, true
}

// Context returns the span's propagation context for Inject.
func (s *Span) Context() TraceContext {
	return TraceContext{TraceID: s.trace.id, SpanID: s.ID}
}

// StartRemote opens a span whose parent arrived over the wire: the consumer
// side of a broker hop or offload boundary calls it with the Extract-ed
// context, and the new span joins the producer's trace as a child of the
// propagated span id. If the trace was evicted from the ring (or belongs to
// another process), the id is re-rooted locally so the span is never an
// orphan; if the span id does not resolve, the span attaches under the root.
func (t *Tracer) StartRemote(ctx TraceContext, name string) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.startRemoteLocked(ctx, name, t.now())
}

func (t *Tracer) startRemoteLocked(ctx TraceContext, name string, begin time.Time) *Span {
	tr, ok := t.traces[ctx.TraceID]
	if !ok {
		tr = &trace{id: ctx.TraceID, name: name}
		t.insertLocked(ctx.TraceID, tr)
		root := &Span{tracer: t, trace: tr, ID: 0, Parent: -1, Name: name, Begin: begin}
		tr.spans = append(tr.spans, root)
		t.spans++
		return root
	}
	parent := ctx.SpanID
	if parent < 0 || parent >= len(tr.spans) {
		parent = 0
	}
	s := &Span{tracer: t, trace: tr, ID: len(tr.spans), Parent: parent, Name: name, Begin: begin}
	tr.spans = append(tr.spans, s)
	t.spans++
	return s
}

// SpanAt records a completed span with explicit timestamps under a remote
// context — how offline timelines (the fog simulator's per-step schedule)
// are replayed into the trace that released the work.
func (t *Tracer) SpanAt(ctx TraceContext, name, tier string, begin, end time.Time) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.startRemoteLocked(ctx, name, begin)
	s.Tier = tier
	if end.Before(begin) {
		end = begin
	}
	s.Finish = end
	return s
}

// StartAt opens a trace whose root begins at an explicit instant, for
// simulated timelines. Pair with Span.EndAt.
func (t *Tracer) StartAt(id, name string, begin time.Time) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	tr := &trace{id: id, name: name}
	t.insertLocked(id, tr)
	root := &Span{tracer: t, trace: tr, ID: 0, Parent: -1, Name: name, Begin: begin}
	tr.spans = append(tr.spans, root)
	t.spans++
	return root
}

// EndAt closes the span at an explicit instant. Like End, the first finish
// time wins.
func (s *Span) EndAt(finish time.Time) {
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	if s.Finish.IsZero() {
		s.Finish = finish
	}
}
