package telemetry

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

func TestInjectExtractRoundTrip(t *testing.T) {
	ctx := TraceContext{TraceID: "t-1", SpanID: 3}
	h := ctx.Inject(map[string]string{"key": "cam-7"})
	if h[HeaderTraceID] != "t-1" || h[HeaderSpanID] != "3" || h["key"] != "cam-7" {
		t.Fatalf("injected headers = %v", h)
	}
	got, ok := Extract(h)
	if !ok || got != ctx {
		t.Fatalf("extracted = %+v, ok = %v", got, ok)
	}

	// nil map: Inject allocates.
	if h := (TraceContext{TraceID: "t-2", SpanID: 0}).Inject(nil); h[HeaderTraceID] != "t-2" {
		t.Fatalf("inject into nil = %v", h)
	}

	// Invalid contexts leave headers untouched and don't extract.
	if h := (TraceContext{}).Inject(nil); h != nil {
		t.Fatalf("invalid inject allocated %v", h)
	}
	if _, ok := Extract(map[string]string{"unrelated": "x"}); ok {
		t.Fatal("extract from headers without trace id")
	}
	if _, ok := Extract(nil); ok {
		t.Fatal("extract from nil headers")
	}

	// Partial propagation: missing or mangled span id falls back to the root.
	for _, h := range []map[string]string{
		{HeaderTraceID: "t-3"},
		{HeaderTraceID: "t-3", HeaderSpanID: "junk"},
		{HeaderTraceID: "t-3", HeaderSpanID: "-4"},
	} {
		got, ok := Extract(h)
		if !ok || got.SpanID != 0 || got.TraceID != "t-3" {
			t.Fatalf("partial extract of %v = %+v, ok = %v", h, got, ok)
		}
	}
}

func TestStartRemoteParentsUnderPropagatedSpan(t *testing.T) {
	clk := &stepClock{t: time.Unix(0, 0), step: 10 * time.Millisecond}
	tr := NewTracer(clk.now, 8)
	root := tr.Start("hop", "producer")
	gate := root.Child("gate")
	gate.End()

	// The consumer continues the trace as a child of the span whose context
	// crossed the wire.
	remote := tr.StartRemote(gate.Context(), "consumer")
	remote.End()
	root.End()

	tv, err := tr.Trace("hop")
	if err != nil {
		t.Fatal(err)
	}
	if len(tv.Spans) != 3 {
		t.Fatalf("spans = %+v", tv.Spans)
	}
	if got := tv.Spans[2]; got.Name != "consumer" || got.Parent != gate.ID {
		t.Fatalf("remote span = %+v, want parent %d", got, gate.ID)
	}
}

func TestStartRemoteReRootsUnknownTrace(t *testing.T) {
	tr := NewTracer((&stepClock{t: time.Unix(0, 0), step: time.Millisecond}).now, 8)
	// Context from an evicted trace (or another process): no orphan, a fresh
	// local root keeps the id resolvable.
	s := tr.StartRemote(TraceContext{TraceID: "foreign", SpanID: 5}, "consumer")
	if s.ID != 0 || s.Parent != -1 {
		t.Fatalf("re-rooted span = %+v", s)
	}
	s.End()
	tv, err := tr.Trace("foreign")
	if err != nil {
		t.Fatal(err)
	}
	if len(tv.Spans) != 1 || tv.Spans[0].Parent != -1 {
		t.Fatalf("re-rooted trace = %+v", tv.Spans)
	}
}

func TestStartRemoteBadSpanIDAttachesToRoot(t *testing.T) {
	tr := NewTracer((&stepClock{t: time.Unix(0, 0), step: time.Millisecond}).now, 8)
	root := tr.Start("t", "producer")
	s := tr.StartRemote(TraceContext{TraceID: "t", SpanID: 99}, "consumer")
	s.End()
	root.End()
	tv, err := tr.Trace("t")
	if err != nil {
		t.Fatal(err)
	}
	if tv.Spans[1].Parent != 0 {
		t.Fatalf("out-of-range span id parented to %d, want root", tv.Spans[1].Parent)
	}
}

func TestExplicitTimeSpans(t *testing.T) {
	tr := NewTracer(nil, 8)
	epoch := time.Unix(100, 0)
	root := tr.StartAt("sim", "job", epoch)
	ctx := root.Context()
	tr.SpanAt(ctx, "compute", "fog", epoch.Add(10*time.Millisecond), epoch.Add(30*time.Millisecond))
	// end before begin clamps to zero duration rather than going negative.
	tr.SpanAt(ctx, "broken", "fog", epoch.Add(40*time.Millisecond), epoch.Add(5*time.Millisecond))
	root.EndAt(epoch.Add(50 * time.Millisecond))
	root.EndAt(epoch.Add(90 * time.Millisecond)) // first finish wins

	tv, err := tr.Trace("sim")
	if err != nil {
		t.Fatal(err)
	}
	if tv.DurationMs != 50 {
		t.Fatalf("root duration = %g, want 50", tv.DurationMs)
	}
	if tv.Spans[1].DurationMs != 20 || tv.Spans[1].Tier != "fog" {
		t.Fatalf("compute span = %+v", tv.Spans[1])
	}
	if tv.Spans[2].DurationMs != 0 {
		t.Fatalf("clamped span duration = %g, want 0", tv.Spans[2].DurationMs)
	}
}

// Regression: re-Starting a retained id while the ring is at capacity must
// move that id to the back of the eviction order, not enqueue a duplicate —
// a duplicate made the next eviction delete the freshly started trace while
// its stale id stayed in the order slice.
func TestReStartAtCapacityKeepsRingConsistent(t *testing.T) {
	clk := &stepClock{t: time.Unix(0, 0), step: time.Millisecond}
	tr := NewTracer(clk.now, 2)
	tr.Start("t1", "a").End()
	tr.Start("t2", "b").End()
	tr.Start("t1", "a2").End() // re-start at capacity

	ids := tr.IDs()
	if len(ids) != 2 || ids[0] != "t2" || ids[1] != "t1" {
		t.Fatalf("order after re-start = %v, want [t2 t1]", ids)
	}
	tv, err := tr.Trace("t1")
	if err != nil {
		t.Fatal(err)
	}
	if tv.Name != "a2" {
		t.Fatalf("re-started trace name = %q, want the fresh one", tv.Name)
	}

	// The next insertion evicts t2 (the actual oldest), never t1.
	tr.Start("t3", "c").End()
	ids = tr.IDs()
	if len(ids) != 2 || ids[0] != "t1" || ids[1] != "t3" {
		t.Fatalf("order after eviction = %v, want [t1 t3]", ids)
	}
	if _, err := tr.Trace("t2"); !errors.Is(err, ErrNoTrace) {
		t.Fatalf("t2 should be evicted, err = %v", err)
	}
}

// Hammers every tracer entry point from many goroutines; run with -race it
// proves exports never observe spans mid-mutation.
func TestTracerConcurrentUse(t *testing.T) {
	tr := NewTracer(nil, 16)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := string(rune('a'+w)) + "-trace"
				root := tr.Start(id, "work")
				child := root.Child("stage")
				child.SetTier("fog")
				remote := tr.StartRemote(child.Context(), "remote")
				remote.SetTier("server")
				remote.End()
				child.End()
				tr.SpanAt(root.Context(), "replay", "cloud", root.Begin, root.Begin)
				root.End()
				if _, err := tr.Trace(id); err != nil {
					t.Errorf("trace %s: %v", id, err)
					return
				}
				tr.IDs()
			}
		}(w)
	}
	wg.Wait()
	for _, id := range tr.IDs() {
		tv, err := tr.Trace(id)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int]bool)
		for i, s := range tv.Spans {
			if s.ID != i || seen[s.ID] {
				t.Fatalf("span ids not dense/unique: %+v", tv.Spans)
			}
			seen[s.ID] = true
			if s.Parent >= s.ID || (s.Parent < 0 && s.ID != 0) {
				t.Fatalf("span %d has impossible parent %d", s.ID, s.Parent)
			}
		}
		var sum float64
		for _, st := range tv.Breakdown() {
			sum += st.ExclusiveMs
		}
		if math.IsNaN(sum) {
			t.Fatalf("breakdown produced NaN for %s", id)
		}
	}
}
