package telemetry

import (
	"fmt"
	"sync"
	"time"
)

// Event severity levels.
const (
	LevelInfo  = "info"
	LevelWarn  = "warn"
	LevelError = "error"
)

// Event is one structured entry in an EventLog. TraceID links the event to
// the ingestion trace that was active when it happened, so a dead-letter or
// breaker transition can be walked back to the exact request it interrupted.
type Event struct {
	Seq        int64  `json:"seq"`
	TimeUnixNs int64  `json:"timeUnixNs"`
	Level      string `json:"level"`
	Component  string `json:"component"`
	Message    string `json:"message"`
	TraceID    string `json:"traceId,omitempty"`
}

// EventLog is a bounded, dependency-free ring of structured events — the
// "what changed and why" channel next to the metrics registry's "how much".
// Log is cheap (one lock, one slot overwrite) so it can sit on retry,
// breaker, DLQ, and healer state changes without perturbing them. Safe for
// concurrent use.
type EventLog struct {
	now func() time.Time
	cap int

	mu      sync.Mutex
	buf     []Event
	next    int
	full    bool
	seq     int64
	dropped int64
}

// NewEventLog builds a ring retaining up to capacity events (<=0 means 256)
// on the given clock (nil means time.Now).
func NewEventLog(now func() time.Time, capacity int) *EventLog {
	if now == nil {
		now = time.Now
	}
	if capacity <= 0 {
		capacity = 256
	}
	return &EventLog{now: now, cap: capacity, buf: make([]Event, capacity)}
}

// Log appends one event. traceID may be empty for state changes that happen
// outside any traced request; format/args follow fmt.Sprintf.
func (l *EventLog) Log(level, component, traceID, format string, args ...any) {
	msg := format
	if len(args) > 0 {
		msg = fmt.Sprintf(format, args...)
	}
	ts := l.now().UnixNano()
	l.mu.Lock()
	l.seq++
	if l.full {
		// The slot being reused still holds the oldest retained event, which
		// this write silently evicts — count it so eviction is observable.
		l.dropped++
	}
	l.buf[l.next] = Event{
		Seq: l.seq, TimeUnixNs: ts,
		Level: level, Component: component, Message: msg, TraceID: traceID,
	}
	l.next++
	if l.next == l.cap {
		l.next = 0
		l.full = true
	}
	l.mu.Unlock()
}

// Events returns up to limit retained events, newest first (limit <= 0 or
// beyond the retained count means all retained).
func (l *EventLog) Events(limit int) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.full {
		n = l.cap
	}
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]Event, 0, limit)
	for i := 0; i < limit; i++ {
		out = append(out, l.buf[(l.next-1-i+l.cap)%l.cap])
	}
	return out
}

// EventsSince returns retained events with Seq > since, oldest first, capped
// at limit (<= 0 means all). Sequence numbers are contiguous and monotonic,
// so a poller that remembers the last Seq it saw reads incrementally:
// EventsSince(last, n) is the next ascending page, and the returned slice is
// nil when nothing new was logged — the cheap steady-state path. Events
// evicted from the ring before the poller caught up are silently skipped
// (Dropped counts them).
func (l *EventLog) EventsSince(since int64, limit int) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.full {
		n = l.cap
	}
	// Retained events hold the contiguous seq range [l.seq-n+1, l.seq].
	avail := l.seq - since
	if avail <= 0 {
		return nil
	}
	if int64(n) < avail {
		avail = int64(n)
	}
	take := int(avail)
	if limit > 0 && limit < take {
		take = limit
	}
	// Oldest unseen event sits `avail` slots behind the write cursor.
	start := (l.next - int(avail) + l.cap) % l.cap
	out := make([]Event, 0, take)
	for i := 0; i < take; i++ {
		out = append(out, l.buf[(start+i)%l.cap])
	}
	return out
}

// Len returns how many events are currently retained.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.full {
		return l.cap
	}
	return l.next
}

// Total returns how many events were ever logged, including evicted ones.
func (l *EventLog) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Dropped returns how many events the ring has overwritten before anyone
// could read them — the silent-eviction count the
// telemetry_events_dropped_total metric exposes.
func (l *EventLog) Dropped() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}
