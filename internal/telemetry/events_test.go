package telemetry

import (
	"testing"
	"time"
)

func TestEventLogRingAndOrder(t *testing.T) {
	clk := &stepClock{t: time.Unix(0, 0), step: time.Second}
	l := NewEventLog(clk.now, 3)
	for i := 1; i <= 5; i++ {
		l.Log(LevelInfo, "broker", "", "event %d", i)
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d, want capacity 3", l.Len())
	}
	if l.Total() != 5 {
		t.Fatalf("total = %d, want 5", l.Total())
	}
	// Five writes into a 3-slot ring overwrote the two oldest events.
	if l.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", l.Dropped())
	}

	evs := l.Events(0)
	if len(evs) != 3 {
		t.Fatalf("events = %d", len(evs))
	}
	// Newest first, oldest two evicted.
	for i, want := range []int64{5, 4, 3} {
		if evs[i].Seq != want {
			t.Fatalf("events[%d].Seq = %d, want %d (%+v)", i, evs[i].Seq, want, evs)
		}
	}
	if evs[0].Message != "event 5" || evs[0].Component != "broker" {
		t.Fatalf("newest event = %+v", evs[0])
	}
	if evs[0].TimeUnixNs <= evs[2].TimeUnixNs {
		t.Fatalf("timestamps not increasing with seq: %+v", evs)
	}
}

func TestEventLogLimit(t *testing.T) {
	l := NewEventLog(nil, 8)
	for i := 1; i <= 4; i++ {
		l.Log(LevelWarn, "dlq", "trace-x", "quarantined %d", i)
	}
	evs := l.Events(2)
	if len(evs) != 2 || evs[0].Seq != 4 || evs[1].Seq != 3 {
		t.Fatalf("limited events = %+v", evs)
	}
	if evs[0].TraceID != "trace-x" || evs[0].Level != LevelWarn {
		t.Fatalf("event lost fields: %+v", evs[0])
	}
	// Limit beyond the retained count returns everything retained.
	if got := l.Events(100); len(got) != 4 {
		t.Fatalf("over-limit events = %d", len(got))
	}
	// Nothing was evicted: the ring never filled.
	if l.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", l.Dropped())
	}
}

func TestEventLogDefaults(t *testing.T) {
	l := NewEventLog(nil, 0)
	l.Log(LevelError, "healer", "", "plain message")
	evs := l.Events(0)
	if len(evs) != 1 || evs[0].Message != "plain message" {
		t.Fatalf("events = %+v", evs)
	}
	if evs[0].TimeUnixNs == 0 {
		t.Fatal("default clock left timestamp zero")
	}
}
