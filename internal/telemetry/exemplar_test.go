package telemetry

import (
	"strings"
	"testing"
)

func TestExemplarWorstBucketRetention(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8, 16})
	// Fill the exemplar slots from low buckets up.
	h.ObserveExemplar(0.5, "t-0") // bucket 0
	h.ObserveExemplar(1.5, "t-1") // bucket 1
	h.ObserveExemplar(3, "t-2")   // bucket 2
	h.ObserveExemplar(6, "t-3")   // bucket 3
	if got := len(h.Exemplars()); got != maxExemplars {
		t.Fatalf("retained = %d, want %d", got, maxExemplars)
	}

	// A worse observation evicts the lowest-bucket exemplar.
	h.ObserveExemplar(100, "t-hot") // overflow bucket
	ex := h.Exemplars()
	if len(ex) != maxExemplars {
		t.Fatalf("retained = %d after eviction", len(ex))
	}
	for _, e := range ex {
		if e.TraceID == "t-0" {
			t.Fatalf("lowest-bucket exemplar survived: %+v", ex)
		}
	}
	worst, ok := h.WorstExemplar()
	if !ok || worst.TraceID != "t-hot" || worst.Value != 100 {
		t.Fatalf("worst = %+v, ok = %v", worst, ok)
	}

	// A better (lower-bucket) observation is not admitted when full.
	h.ObserveExemplar(0.1, "t-cold")
	for _, e := range h.Exemplars() {
		if e.TraceID == "t-cold" {
			t.Fatalf("low-bucket exemplar displaced a worse one: %+v", h.Exemplars())
		}
	}

	// Empty trace ids observe without becoming exemplars.
	before := h.Count()
	h.ObserveExemplar(50, "")
	if h.Count() != before+1 {
		t.Fatal("observation with empty trace id not counted")
	}
	if w, _ := h.WorstExemplar(); w.TraceID == "" {
		t.Fatalf("anonymous exemplar retained: %+v", w)
	}
}

func TestCountAtOrBelow(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	if got := h.CountAtOrBelow(2); got != 2 {
		t.Fatalf("<=2 = %d, want 2", got)
	}
	if got := h.CountAtOrBelow(4); got != 3 {
		t.Fatalf("<=4 = %d, want 3 (overflow excluded)", got)
	}
	if got := h.CountAtOrBelow(0.5); got != 0 {
		t.Fatalf("<=0.5 = %d, want 0 (bound below first bucket)", got)
	}
}

func TestPrometheusExemplarTrailer(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("demo_seconds", "demo", []float64{1, 10})
	h.ObserveExemplar(5, "trace-tail")

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# {trace_id="trace-tail"} 5`) {
		t.Fatalf("missing exemplar trailer:\n%s", out)
	}
	// The trailer rides the bucket the observation landed in.
	if !strings.Contains(out, `demo_seconds_bucket{le="10"} 1 # {trace_id="trace-tail"} 5`) {
		t.Fatalf("exemplar not on its bucket line:\n%s", out)
	}
}

func TestSnapshotExemplarTrace(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("snap_seconds", "demo", []float64{1, 10})
	h.ObserveExemplar(0.5, "trace-low")
	h.ObserveExemplar(5, "trace-high")
	for _, p := range r.Snapshot() {
		if p.Name == "snap_seconds" {
			if p.ExemplarTrace != "trace-high" {
				t.Fatalf("snapshot exemplar = %q, want worst bucket's", p.ExemplarTrace)
			}
			return
		}
	}
	t.Fatal("histogram missing from snapshot")
}
