package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Histogram counts observations into fixed buckets (cumulative at
// exposition, non-cumulative internally) and keeps a running sum, which is
// enough to derive rates, means, and quantile estimates. Observe is
// lock-free and allocation-free so it can sit on produce/poll and storage
// hot paths.
type Histogram struct {
	bounds []float64       // ascending upper bounds; observations > last land in overflow
	counts []atomic.Uint64 // len(bounds)+1; last slot is the overflow (+Inf) bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated

	// Exemplars ride on ObserveExemplar only, behind their own lock so the
	// plain Observe hot path stays lock-free.
	exMu      sync.Mutex
	exemplars []Exemplar
}

// Exemplar links one observation to the trace that produced it, retained for
// the worst (highest) buckets seen so a p99 outlier on a dashboard resolves
// to an inspectable trace.
type Exemplar struct {
	Value   float64 `json:"value"`
	TraceID string  `json:"traceId"`
	Bucket  int     `json:"bucket"` // bucket index; len(bounds) is the +Inf bucket
}

// maxExemplars bounds retained exemplars per histogram.
const maxExemplars = 4

// DefBuckets covers latencies from 100µs to ~100s in seconds — wide enough
// for both in-process microsecond operations and simulated multi-second
// paths.
func DefBuckets() []float64 { return ExpBuckets(1e-4, 2, 21) }

// ExpBuckets returns n exponentially growing upper bounds starting at
// start, each factor times the previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		return []float64{start}
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// NewHistogram builds a histogram with the given ascending upper bounds
// (nil or empty means DefBuckets). Prefer Registry.Histogram, which also
// registers it for exposition.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets()
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveExemplar records v like Observe and, when traceID is non-empty,
// offers it as an exemplar: the histogram keeps the most recent observations
// from its worst buckets, evicting the lowest-bucket entry when full. Slower
// than Observe (one small lock), so use it on per-item paths, not per-byte
// ones.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	bucket := 0
	for bucket < len(h.bounds) && v > h.bounds[bucket] {
		bucket++
	}
	h.exMu.Lock()
	defer h.exMu.Unlock()
	if len(h.exemplars) < maxExemplars {
		h.exemplars = append(h.exemplars, Exemplar{Value: v, TraceID: traceID, Bucket: bucket})
		return
	}
	lo := 0
	for i := 1; i < len(h.exemplars); i++ {
		if h.exemplars[i].Bucket < h.exemplars[lo].Bucket {
			lo = i
		}
	}
	if bucket < h.exemplars[lo].Bucket {
		return
	}
	copy(h.exemplars[lo:], h.exemplars[lo+1:])
	h.exemplars[len(h.exemplars)-1] = Exemplar{Value: v, TraceID: traceID, Bucket: bucket}
}

// Exemplars returns the retained exemplars, worst bucket first.
func (h *Histogram) Exemplars() []Exemplar {
	h.exMu.Lock()
	out := make([]Exemplar, len(h.exemplars))
	copy(out, h.exemplars)
	h.exMu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Bucket > out[j].Bucket })
	return out
}

// WorstExemplar returns the exemplar from the highest bucket; ok is false
// when none were retained.
func (h *Histogram) WorstExemplar() (Exemplar, bool) {
	ex := h.Exemplars()
	if len(ex) == 0 {
		return Exemplar{}, false
	}
	return ex[0], true
}

// mergeFrom folds src's bucket counts, observation count, and sum into h.
// Both histograms must share bucket bounds (vec children always do: the
// family hands every child the same bounds). Used when a vec child is
// demoted into its family's rollup series; exemplars stay behind.
func (h *Histogram) mergeFrom(src *Histogram) {
	for i := range src.counts {
		if n := src.counts[i].Load(); n > 0 {
			h.counts[i].Add(n)
		}
	}
	if n := src.count.Load(); n > 0 {
		h.count.Add(n)
	}
	if s := src.Sum(); s != 0 {
		for {
			old := h.sum.Load()
			nw := math.Float64bits(math.Float64frombits(old) + s)
			if h.sum.CompareAndSwap(old, nw) {
				break
			}
		}
	}
}

// CountAtOrBelow returns how many observations landed in buckets whose upper
// bound is <= bound — the "good" numerator for latency-threshold SLOs.
func (h *Histogram) CountAtOrBelow(bound float64) uint64 {
	var n uint64
	for i, ub := range h.bounds {
		if ub > bound {
			break
		}
		n += h.counts[i].Load()
	}
	return n
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the bucket upper bounds (excluding the implicit +Inf).
func (h *Histogram) Bounds() []float64 {
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// BucketCounts returns non-cumulative per-bucket counts; the last entry is
// the overflow (+Inf) bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// within the bucket holding that rank. With zero observations it returns 0.
// Ranks falling in the overflow bucket return the largest finite bound —
// the histogram cannot see past its buckets, and a capped answer is more
// useful to dashboards than +Inf.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - cum) / n
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Mean returns the average observation (0 with no observations).
func (h *Histogram) Mean() float64 {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return h.Sum() / float64(c)
}
