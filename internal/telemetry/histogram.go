package telemetry

import (
	"math"
	"sync/atomic"
)

// Histogram counts observations into fixed buckets (cumulative at
// exposition, non-cumulative internally) and keeps a running sum, which is
// enough to derive rates, means, and quantile estimates. Observe is
// lock-free and allocation-free so it can sit on produce/poll and storage
// hot paths.
type Histogram struct {
	bounds []float64       // ascending upper bounds; observations > last land in overflow
	counts []atomic.Uint64 // len(bounds)+1; last slot is the overflow (+Inf) bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// DefBuckets covers latencies from 100µs to ~100s in seconds — wide enough
// for both in-process microsecond operations and simulated multi-second
// paths.
func DefBuckets() []float64 { return ExpBuckets(1e-4, 2, 21) }

// ExpBuckets returns n exponentially growing upper bounds starting at
// start, each factor times the previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		return []float64{start}
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// NewHistogram builds a histogram with the given ascending upper bounds
// (nil or empty means DefBuckets). Prefer Registry.Histogram, which also
// registers it for exposition.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets()
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the bucket upper bounds (excluding the implicit +Inf).
func (h *Histogram) Bounds() []float64 {
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// BucketCounts returns non-cumulative per-bucket counts; the last entry is
// the overflow (+Inf) bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// within the bucket holding that rank. With zero observations it returns 0.
// Ranks falling in the overflow bucket return the largest finite bound —
// the histogram cannot see past its buckets, and a capped answer is more
// useful to dashboards than +Inf.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - cum) / n
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Mean returns the average observation (0 with no observations).
func (h *Histogram) Mean() float64 {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return h.Sum() / float64(c)
}
