package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// Labels are first-class here, not string suffixes: a parsed label set with
// canonical key ordering and spec-correct exposition escaping is what lets
// the registry, the vec families (vec.go), and the TSDB's label selectors
// all agree on which series `name{camera="cam-7"}` is. The canonical wire
// form — keys sorted, values escaped per the Prometheus text format — is
// still used as the registry map key, so one camera is always exactly one
// series no matter which layer formatted the name.

// Label is one key="value" pair.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// LabelSet is a parsed label block in canonical (key-sorted) order.
type LabelSet []Label

// Get returns the value for key ("" when absent).
func (ls LabelSet) Get(key string) string {
	for _, l := range ls {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// String renders the canonical exposition form: `{k1="v1",k2="v2"}` with
// keys sorted and values escaped. An empty set renders as "".
func (ls LabelSet) String() string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// sortLabels orders a label set by key (stable for the canonical form).
func sortLabels(ls LabelSet) {
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
}

// EscapeLabelValue escapes a label value per the Prometheus text exposition
// format: backslash, double quote, and line feed — and nothing else. (This
// is deliberately not %q: Go quoting also escapes control and non-ASCII
// bytes, which the exposition format passes through raw.)
func EscapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 4)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// UnescapeLabelValue reverses EscapeLabelValue. Unknown escape sequences are
// an error — a scrape-side parser that guessed would silently corrupt
// round-trips.
func UnescapeLabelValue(v string) (string, error) {
	if !strings.ContainsRune(v, '\\') {
		return v, nil
	}
	var b strings.Builder
	b.Grow(len(v))
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(v) {
			return "", fmt.Errorf("telemetry: trailing backslash in label value %q", v)
		}
		switch v[i] {
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case 'n':
			b.WriteByte('\n')
		default:
			return "", fmt.Errorf("telemetry: bad escape \\%c in label value %q", v[i], v)
		}
	}
	return b.String(), nil
}

// validLabelKey checks the exposition label-name grammar
// [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelKey(k string) bool {
	if k == "" {
		return false
	}
	for i := 0; i < len(k); i++ {
		c := k[i]
		switch {
		case c == '_', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// FormatName renders the canonical full series name for a family plus label
// set: family{k="v",...} with keys sorted and values escaped.
func FormatName(family string, labels LabelSet) string {
	if len(labels) == 0 {
		return family
	}
	ls := make(LabelSet, len(labels))
	copy(ls, labels)
	sortLabels(ls)
	return family + ls.String()
}

// ParseName splits a full series name into its family and parsed label set.
// Names without a label block parse to a nil set. The label grammar is the
// canonical exposition subset this package emits: `{k="v",k2="v2"}` with
// escaped values and no trailing comma.
func ParseName(full string) (family string, labels LabelSet, err error) {
	brace := strings.IndexByte(full, '{')
	if brace < 0 {
		return full, nil, nil
	}
	family = full[:brace]
	block := full[brace:]
	if !strings.HasSuffix(block, "}") {
		return "", nil, fmt.Errorf("telemetry: unclosed label block in %q", full)
	}
	body := block[1 : len(block)-1]
	if body == "" {
		return "", nil, fmt.Errorf("telemetry: empty label matcher in %q", full)
	}
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return "", nil, fmt.Errorf("telemetry: label pair missing '=' in %q", full)
		}
		key := strings.TrimSpace(body[:eq])
		if !validLabelKey(key) {
			return "", nil, fmt.Errorf("telemetry: bad label name %q in %q", key, full)
		}
		rest := strings.TrimSpace(body[eq+1:])
		if len(rest) == 0 || rest[0] != '"' {
			return "", nil, fmt.Errorf("telemetry: label %s missing quoted value in %q", key, full)
		}
		// Scan the quoted value, honoring escapes.
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return "", nil, fmt.Errorf("telemetry: unterminated label value for %s in %q", key, full)
		}
		val, uerr := UnescapeLabelValue(rest[1:end])
		if uerr != nil {
			return "", nil, uerr
		}
		labels = append(labels, Label{Key: key, Value: val})
		body = strings.TrimSpace(rest[end+1:])
		if body == "" {
			break
		}
		if body[0] != ',' {
			return "", nil, fmt.Errorf("telemetry: label pairs not comma-separated in %q", full)
		}
		body = strings.TrimSpace(body[1:])
		if body == "" {
			return "", nil, fmt.Errorf("telemetry: trailing comma in label block of %q", full)
		}
	}
	sortLabels(labels)
	return family, labels, nil
}
