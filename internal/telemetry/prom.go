package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE lines once per metric
// family, histograms as cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	lastFamily := ""
	for _, m := range r.sortedMetrics() {
		family := baseName(m.name)
		if family != lastFamily {
			if m.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", family, m.help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", family, m.kind)
			lastFamily = family
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s %d\n", m.name, m.counter.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%s %s\n", m.name, formatFloat(m.gauge.Value()))
		case kindCounterFunc, kindGaugeFunc:
			fmt.Fprintf(&b, "%s %s\n", m.name, formatFloat(m.fn()))
		case kindHistogram:
			writeHistogram(&b, m)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram emits cumulative buckets plus _sum and _count. Buckets that
// retained an exemplar get an OpenMetrics-style trailer
// (`# {trace_id="..."} value`) linking the tail to an inspectable trace.
func writeHistogram(b *strings.Builder, m *metric) {
	family := baseName(m.name)
	labels := m.name[len(family):] // "" or "{k=\"v\"}"
	bounds := m.hist.Bounds()
	counts := m.hist.BucketCounts()
	byBucket := make(map[int]Exemplar)
	for _, ex := range m.hist.Exemplars() {
		if _, ok := byBucket[ex.Bucket]; !ok {
			byBucket[ex.Bucket] = ex
		}
	}
	line := func(i int, le string, cum uint64) {
		fmt.Fprintf(b, "%s_bucket%s %d", family, mergeLabel(labels, "le", le), cum)
		if ex, ok := byBucket[i]; ok {
			fmt.Fprintf(b, " # {trace_id=%q} %s", ex.TraceID, formatFloat(ex.Value))
		}
		b.WriteByte('\n')
	}
	var cum uint64
	for i, bound := range bounds {
		cum += counts[i]
		line(i, formatFloat(bound), cum)
	}
	cum += counts[len(counts)-1]
	line(len(bounds), "+Inf", cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", family, labels, formatFloat(m.hist.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", family, labels, m.hist.Count())
}

// mergeLabel adds one label pair to an existing (possibly empty) label
// block.
func mergeLabel(labels, key, value string) string {
	pair := fmt.Sprintf("%s=%q", key, value)
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// formatFloat renders floats the way Prometheus expects: shortest exact
// representation, integers without a trailing ".0".
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
