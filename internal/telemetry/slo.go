package telemetry

import (
	"sync"
	"time"
)

// SLO tracks one service-level objective over a pair of cumulative samplers:
// total() counts units of work, good() the subset that met the objective
// (delivered, or under the latency threshold). Each Report() takes a fresh
// sample, prunes samples older than the rolling window, and computes the
// error rate and burn rate over the windowed deltas — the standard
// "burn rate = observed error rate / budgeted error rate" form, where a burn
// rate of 1.0 consumes the error budget exactly as fast as the objective
// allows and anything above it is an incident in the making.
type SLO struct {
	name      string
	objective float64
	window    time.Duration
	good      func() float64
	total     func() float64
	now       func() time.Time

	mu      sync.Mutex
	samples []sloSample
}

type sloSample struct {
	t           time.Time
	good, total float64
}

// SLOReport is one objective's current burn math.
type SLOReport struct {
	Name          string  `json:"name"`
	Objective     float64 `json:"objective"`
	WindowSeconds float64 `json:"windowSeconds"`
	// Good/Total are the windowed deltas the rates below are computed from.
	Good      float64 `json:"good"`
	Total     float64 `json:"total"`
	ErrorRate float64 `json:"errorRate"`
	// BurnRate is ErrorRate divided by the budgeted error rate
	// (1 - Objective); 1.0 means the budget drains exactly on schedule.
	BurnRate float64 `json:"burnRate"`
}

// NewSLO builds one objective. objective is the target good/total fraction
// (e.g. 0.999); window bounds the rolling deltas (<=0 means one hour); nil
// now means time.Now.
func NewSLO(name string, objective float64, window time.Duration, good, total func() float64, now func() time.Time) *SLO {
	if window <= 0 {
		window = time.Hour
	}
	if now == nil {
		now = time.Now
	}
	return &SLO{name: name, objective: objective, window: window, good: good, total: total, now: now}
}

// Report samples the counters and returns the windowed burn math.
func (s *SLO) Report() SLOReport {
	ts := s.now()
	good, total := s.good(), s.total()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.samples = append(s.samples, sloSample{t: ts, good: good, total: total})
	s.pruneLocked(ts)

	first, last := s.samples[0], s.samples[len(s.samples)-1]
	rep := SLOReport{
		Name: s.name, Objective: s.objective, WindowSeconds: s.window.Seconds(),
		Good: last.good - first.good, Total: last.total - first.total,
	}
	if rep.Total > 0 {
		bad := rep.Total - rep.Good
		if bad < 0 {
			bad = 0
		}
		rep.ErrorRate = bad / rep.Total
	}
	if budget := 1 - s.objective; budget > 0 {
		rep.BurnRate = rep.ErrorRate / budget
	}
	return rep
}

// pruneLocked drops samples that fell out of the window, keeping the newest
// sample at or before the window edge as the delta baseline.
func (s *SLO) pruneLocked(now time.Time) {
	cut := now.Add(-s.window)
	keep := 0
	for keep < len(s.samples)-1 && !s.samples[keep+1].t.After(cut) {
		keep++
	}
	s.samples = s.samples[keep:]
}

// SLOMonitor is an ordered collection of SLOs sharing one clock — what
// GET /api/slo serves.
type SLOMonitor struct {
	now func() time.Time

	mu   sync.Mutex
	slos []*SLO
}

// NewSLOMonitor builds an empty monitor (nil now means time.Now).
func NewSLOMonitor(now func() time.Time) *SLOMonitor {
	if now == nil {
		now = time.Now
	}
	return &SLOMonitor{now: now}
}

// Add registers an objective and returns it.
func (m *SLOMonitor) Add(name string, objective float64, window time.Duration, good, total func() float64) *SLO {
	s := NewSLO(name, objective, window, good, total, m.now)
	m.mu.Lock()
	m.slos = append(m.slos, s)
	m.mu.Unlock()
	return s
}

// MaxBurn samples every objective and returns the worst current burn rate
// (0 when no objectives are registered) — the single health scalar the
// adaptive controller consumes.
func (m *SLOMonitor) MaxBurn() float64 {
	var worst float64
	for _, rep := range m.Reports() {
		if rep.BurnRate > worst {
			worst = rep.BurnRate
		}
	}
	return worst
}

// Reports samples every objective in registration order.
func (m *SLOMonitor) Reports() []SLOReport {
	m.mu.Lock()
	slos := make([]*SLO, len(m.slos))
	copy(slos, m.slos)
	m.mu.Unlock()
	out := make([]SLOReport, len(slos))
	for i, s := range slos {
		out[i] = s.Report()
	}
	return out
}
