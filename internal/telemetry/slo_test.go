package telemetry

import (
	"math"
	"testing"
	"time"
)

// manualClock advances only when told, unlike stepClock.
type manualClock struct{ t time.Time }

func (c *manualClock) now() time.Time { return c.t }

func TestSLOBurnMath(t *testing.T) {
	clk := &manualClock{t: time.Unix(0, 0)}
	var good, total float64
	s := NewSLO("delivery", 0.9, 10*time.Minute,
		func() float64 { return good },
		func() float64 { return total }, clk.now)

	// First sample: no window yet, nothing to burn.
	rep := s.Report()
	if rep.Total != 0 || rep.ErrorRate != 0 || rep.BurnRate != 0 {
		t.Fatalf("empty report = %+v", rep)
	}

	// 100 units, 90 good → error rate 0.1 = exactly the budget → burn 1.0.
	clk.t = clk.t.Add(time.Minute)
	good, total = 90, 100
	rep = s.Report()
	if rep.Good != 90 || rep.Total != 100 {
		t.Fatalf("windowed deltas = %+v", rep)
	}
	if math.Abs(rep.ErrorRate-0.1) > 1e-12 || math.Abs(rep.BurnRate-1.0) > 1e-12 {
		t.Fatalf("rates = %+v", rep)
	}

	// 100 more units, all bad → cumulative windowed error 110/200.
	clk.t = clk.t.Add(time.Minute)
	total = 200
	rep = s.Report()
	if math.Abs(rep.ErrorRate-0.55) > 1e-12 || math.Abs(rep.BurnRate-5.5) > 1e-12 {
		t.Fatalf("rates after bad batch = %+v", rep)
	}
}

func TestSLOWindowPruning(t *testing.T) {
	clk := &manualClock{t: time.Unix(0, 0)}
	var good, total float64
	s := NewSLO("latency", 0.99, 10*time.Minute,
		func() float64 { return good },
		func() float64 { return total }, clk.now)

	good, total = 0, 100 // 100 bad units at t=0
	s.Report()
	clk.t = clk.t.Add(time.Minute)
	good, total = 100, 200 // 100 good units at t=1min
	s.Report()

	// Far past the window: the t=1min sample becomes the delta baseline, so
	// the old failures no longer burn budget.
	clk.t = clk.t.Add(30 * time.Minute)
	good, total = 150, 250 // 50 more, all good
	rep := s.Report()
	if rep.Good != 50 || rep.Total != 50 {
		t.Fatalf("pruned deltas = %+v", rep)
	}
	if rep.ErrorRate != 0 || rep.BurnRate != 0 {
		t.Fatalf("stale failures still burning: %+v", rep)
	}
}

func TestSLOGoodExceedingTotalClamps(t *testing.T) {
	clk := &manualClock{t: time.Unix(0, 0)}
	var good, total float64
	s := NewSLO("odd", 0.5, time.Hour,
		func() float64 { return good },
		func() float64 { return total }, clk.now)
	s.Report()
	clk.t = clk.t.Add(time.Minute)
	good, total = 10, 5 // mis-sampled counters must not go negative
	rep := s.Report()
	if rep.ErrorRate != 0 || rep.BurnRate != 0 {
		t.Fatalf("negative bad leaked: %+v", rep)
	}
}

func TestSLOMonitorOrderAndClock(t *testing.T) {
	clk := &manualClock{t: time.Unix(0, 0)}
	m := NewSLOMonitor(clk.now)
	var aTotal float64
	m.Add("a", 0.999, time.Hour, func() float64 { return aTotal }, func() float64 { return aTotal })
	m.Add("b", 0.95, 0, func() float64 { return 0 }, func() float64 { return 0 })

	reps := m.Reports()
	if len(reps) != 2 || reps[0].Name != "a" || reps[1].Name != "b" {
		t.Fatalf("reports = %+v", reps)
	}
	// window <= 0 defaults to one hour.
	if reps[1].WindowSeconds != 3600 {
		t.Fatalf("default window = %g", reps[1].WindowSeconds)
	}

	clk.t = clk.t.Add(time.Minute)
	aTotal = 42 // all good → zero burn
	reps = m.Reports()
	if reps[0].Total != 42 || reps[0].BurnRate != 0 {
		t.Fatalf("objective a = %+v", reps[0])
	}
}
