// Package telemetry is the observability backbone of the
// cyberinfrastructure: a dependency-free metrics registry (counters,
// gauges, histograms with fixed exponential buckets and quantile summaries)
// plus a lightweight span tracer for per-tier latency attribution. The hot
// record path — Counter.Add, Gauge.Set, Histogram.Observe — is lock-free
// and allocation-free, so instrumentation can live inside the broker,
// flume, and storage fast paths without perturbing what it measures.
//
// Components that already keep their own counters (retry policies,
// breakers, HDFS clusters, HBase tables) are exposed at scrape time via
// CounterFunc/GaugeFunc instead of double-counting on the hot path.
//
// Metric naming follows the repo convention cityinfra_<subsystem>_<name>,
// with Prometheus-style {label="value"} suffixes baked into the registered
// name (labels are static for this in-process system, so pre-formatting
// them keeps the record path free of string work).
package telemetry

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Sentinel errors.
var (
	ErrDuplicateMetric = errors.New("telemetry: metric already registered with a different type")
)

// Counter is a monotonically increasing metric. The zero value is usable,
// but counters should normally come from Registry.Counter so they appear in
// the exposition output.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int) {
	if n > 0 {
		c.v.Add(uint64(n))
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down, stored as a float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metricKind enumerates registered metric types.
type metricKind int

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k metricKind) String() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// metric is one registered instrument.
type metric struct {
	name string // full name including any {label="value"} suffix
	help string
	kind metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// Registry holds named metrics and renders them for exposition. All
// registration methods are get-or-create and safe for concurrent use;
// the returned instruments are the hot-path handles.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric
	vecs    []*vecFamily
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// WithLabel appends one {key="value"} label pair to a metric name,
// pre-formatting it so the hot path never touches strings. Calling it on a
// name that already has labels inserts the new pair before the closing
// brace. Values are escaped per the exposition format (labels.go), so a
// value containing quotes, backslashes, or newlines round-trips through
// /metrics parsers exactly.
func WithLabel(name, key, value string) string {
	pair := key + `="` + EscapeLabelValue(value) + `"`
	if n := len(name); n > 0 && name[n-1] == '}' {
		return name[:n-1] + "," + pair + "}"
	}
	return name + "{" + pair + "}"
}

// baseName strips the {label...} suffix, yielding the metric family name
// used for HELP/TYPE lines.
func baseName(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '{' {
			return name[:i]
		}
	}
	return name
}

func (r *Registry) lookupOrCreate(name, help string, kind metricKind) (*metric, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			return nil, fmt.Errorf("%w: %s is %s, requested %s", ErrDuplicateMetric, name, m.kind, kind)
		}
		return m, nil
	}
	m := &metric{name: name, help: help, kind: kind}
	switch kind {
	case kindCounter:
		m.counter = &Counter{}
	case kindGauge:
		m.gauge = &Gauge{}
	}
	r.metrics[name] = m
	return m, nil
}

// Counter returns the named counter, creating it on first use. A name
// collision with a different metric type panics: it is a wiring bug, not a
// runtime condition.
func (r *Registry) Counter(name, help string) *Counter {
	m, err := r.lookupOrCreate(name, help, kindCounter)
	if err != nil {
		panic(err)
	}
	return m.counter
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	m, err := r.lookupOrCreate(name, help, kindGauge)
	if err != nil {
		panic(err)
	}
	return m.gauge
}

// Histogram returns the named histogram, creating it on first use with the
// given bucket upper bounds (nil means DefBuckets). Bounds on an existing
// histogram are not re-checked: the first registration wins.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kindHistogram {
			panic(fmt.Errorf("%w: %s is %s, requested histogram", ErrDuplicateMetric, name, m.kind))
		}
		return m.hist
	}
	m := &metric{name: name, help: help, kind: kindHistogram, hist: NewHistogram(buckets)}
	r.metrics[name] = m
	return m.hist
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for components that already maintain their own monotonic stats
// (retry policies, breakers, HDFS block counters) so the hot path is not
// instrumented twice. Re-registering a name replaces the function.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics[name] = &metric{name: name, help: help, kind: kindCounterFunc, fn: fn}
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics[name] = &metric{name: name, help: help, kind: kindGaugeFunc, fn: fn}
}

// unregister drops a metric by full name (vec demotion only; ordinary
// instruments are registered for life).
func (r *Registry) unregister(name string) {
	r.mu.Lock()
	delete(r.metrics, name)
	r.mu.Unlock()
}

// rebalanceVecs re-ranks every vec family's children against its top-K
// budget before a snapshot, so what gets exposed is the heavy-hitter set as
// of this scrape.
func (r *Registry) rebalanceVecs() {
	r.mu.RLock()
	vecs := make([]*vecFamily, len(r.vecs))
	copy(vecs, r.vecs)
	r.mu.RUnlock()
	for _, v := range vecs {
		v.rebalance()
	}
}

// sortedMetrics snapshots the registry in deterministic exposition order:
// family name, then full name.
func (r *Registry) sortedMetrics() []*metric {
	r.rebalanceVecs()
	r.mu.RLock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		bi, bj := baseName(out[i].name), baseName(out[j].name)
		if bi != bj {
			return bi < bj
		}
		return out[i].name < out[j].name
	})
	return out
}

// Point is one metric's snapshot for report tables.
type Point struct {
	Name  string
	Type  string
	Value float64 // counter/gauge value; histogram count
	// Histogram-only summary (zero for other types).
	Count         uint64
	Sum           float64
	P50, P95, P99 float64
	// ExemplarTrace is the trace id of the worst-bucket exemplar, when the
	// histogram retained one — the id a p99 outlier resolves to.
	ExemplarTrace string
}

// Snapshot returns every metric's current value in exposition order.
func (r *Registry) Snapshot() []Point {
	ms := r.sortedMetrics()
	out := make([]Point, 0, len(ms))
	for _, m := range ms {
		p := Point{Name: m.name, Type: m.kind.String()}
		switch m.kind {
		case kindCounter:
			p.Value = float64(m.counter.Value())
		case kindGauge:
			p.Value = m.gauge.Value()
		case kindCounterFunc, kindGaugeFunc:
			p.Value = m.fn()
		case kindHistogram:
			c, s := m.hist.Count(), m.hist.Sum()
			p.Count, p.Sum, p.Value = c, s, float64(c)
			p.P50 = m.hist.Quantile(0.50)
			p.P95 = m.hist.Quantile(0.95)
			p.P99 = m.hist.Quantile(0.99)
			if ex, ok := m.hist.WorstExemplar(); ok {
				p.ExemplarTrace = ex.TraceID
			}
		}
		out = append(out, p)
	}
	return out
}
