package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cityinfra_test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("cityinfra_test_ops_total", "ops"); again != c {
		t.Fatal("Counter is not get-or-create")
	}

	g := r.Gauge("cityinfra_test_depth", "depth")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestTypeCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("cityinfra_test_x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on counter/gauge name collision")
		}
	}()
	r.Gauge("cityinfra_test_x", "")
}

func TestHistogramZeroObservations(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram: count=%d sum=%g mean=%g", h.Count(), h.Sum(), h.Mean())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("Quantile(%g) on empty histogram = %g, want 0", q, got)
		}
	}
	// Exposition of an empty histogram must still be well-formed.
	r := NewRegistry()
	r.Histogram("cityinfra_test_empty_seconds", "", []float64{1, 2})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`cityinfra_test_empty_seconds_bucket{le="+Inf"} 0`,
		"cityinfra_test_empty_seconds_count 0",
		"cityinfra_test_empty_seconds_sum 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 3, 100, 1e9} {
		h.Observe(v)
	}
	counts := h.BucketCounts()
	if len(counts) != 4 {
		t.Fatalf("bucket slots = %d, want 4 (3 bounds + overflow)", len(counts))
	}
	if counts[3] != 2 {
		t.Fatalf("overflow bucket = %d, want 2", counts[3])
	}
	// Quantiles in the overflow region are capped at the largest finite
	// bound rather than reporting +Inf.
	if got := h.Quantile(0.99); got != 4 {
		t.Fatalf("overflow quantile = %g, want 4", got)
	}
	if math.IsInf(h.Sum(), 0) || h.Sum() != 0.5+3+100+1e9 {
		t.Fatalf("sum = %g", h.Sum())
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 40})
	for i := 0; i < 100; i++ {
		h.Observe(15) // all in (10, 20]
	}
	q := h.Quantile(0.5)
	if q < 10 || q > 20 {
		t.Fatalf("p50 = %g, want inside (10, 20]", q)
	}
	if h.Quantile(0.01) > h.Quantile(0.99) {
		t.Fatal("quantiles not monotone")
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(b) != len(want) {
		t.Fatalf("len = %d", len(b))
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket[%d] = %g, want %g", i, b[i], want[i])
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(WithLabel("cityinfra_broker_produce_total", "topic", "tweets"), "produced records").Add(7)
	r.Counter(WithLabel("cityinfra_broker_produce_total", "topic", "waze"), "produced records").Add(3)
	r.Gauge("cityinfra_hdfs_live_datanodes", "live datanodes").Set(4)
	r.GaugeFunc("cityinfra_breaker_state", "breaker state", func() float64 { return 1 })
	r.CounterFunc("cityinfra_retry_retries_total", "retries", func() float64 { return 42 })
	h := r.Histogram("cityinfra_pipeline_ingest_seconds", "ingest latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE cityinfra_broker_produce_total counter",
		`cityinfra_broker_produce_total{topic="tweets"} 7`,
		`cityinfra_broker_produce_total{topic="waze"} 3`,
		"# TYPE cityinfra_hdfs_live_datanodes gauge",
		"cityinfra_hdfs_live_datanodes 4",
		"cityinfra_breaker_state 1",
		"cityinfra_retry_retries_total 42",
		"# TYPE cityinfra_pipeline_ingest_seconds histogram",
		`cityinfra_pipeline_ingest_seconds_bucket{le="0.1"} 1`,
		`cityinfra_pipeline_ingest_seconds_bucket{le="1"} 2`,
		`cityinfra_pipeline_ingest_seconds_bucket{le="+Inf"} 3`,
		"cityinfra_pipeline_ingest_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE emitted once per family even with multiple label sets.
	if n := strings.Count(out, "# TYPE cityinfra_broker_produce_total"); n != 1 {
		t.Fatalf("TYPE lines for family = %d, want 1", n)
	}
}

func TestWithLabel(t *testing.T) {
	n := WithLabel("m_total", "a", "x")
	if n != `m_total{a="x"}` {
		t.Fatalf("WithLabel = %s", n)
	}
	n = WithLabel(n, "b", "y")
	if n != `m_total{a="x",b="y"}` {
		t.Fatalf("WithLabel chained = %s", n)
	}
	if baseName(n) != "m_total" {
		t.Fatalf("baseName = %s", baseName(n))
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "").Add(2)
	r.Gauge("a_depth", "").Set(1)
	h := r.Histogram("c_seconds", "", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	pts := r.Snapshot()
	if len(pts) != 3 {
		t.Fatalf("snapshot = %d points", len(pts))
	}
	// Deterministic order: family-name sorted.
	if pts[0].Name != "a_depth" || pts[1].Name != "b_total" || pts[2].Name != "c_seconds" {
		t.Fatalf("order = %v", []string{pts[0].Name, pts[1].Name, pts[2].Name})
	}
	if pts[2].Count != 2 || pts[2].Sum != 5.5 || pts[2].P99 <= 0 {
		t.Fatalf("hist point = %+v", pts[2])
	}
}

// The record path must not allocate: it sits inside broker produce/poll and
// storage writes (acceptance criterion for this subsystem).
func TestRecordPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cityinfra_test_hot_total", "")
	g := r.Gauge("cityinfra_test_hot_depth", "")
	h := r.Histogram("cityinfra_test_hot_seconds", "", nil)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		g.Add(0.5)
		h.Observe(0.0042)
	})
	if allocs != 0 {
		t.Fatalf("record path allocates %.1f bytes-worth of objects per op, want 0", allocs)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h_seconds", "", []float64{0.5, 1})
	var wg sync.WaitGroup
	const workers, perWorker = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(float64(i%2) + 0.25)
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*perWorker {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Fatalf("hist count = %d, want %d", h.Count(), workers*perWorker)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-4)
	}
}
