package telemetry

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrNoTrace reports an unknown trace id.
var ErrNoTrace = errors.New("telemetry: trace not found")

// Tracer records parent/child spans on an injectable clock and retains the
// most recent traces in a bounded ring, exportable as JSON and as an
// aggregated critical-path report. It is deliberately minimal: one process,
// string trace ids, integer span ids.
type Tracer struct {
	now func() time.Time
	cap int

	mu     sync.Mutex
	traces map[string]*trace
	order  []string // insertion order for ring eviction
	spans  int64    // spans ever created, including evicted traces'
}

type trace struct {
	id    string
	name  string
	spans []*Span
}

// Span is one timed operation inside a trace. Start it via Tracer.Start or
// Span.Child; close it with End. Spans are not safe for concurrent
// mutation — each belongs to one goroutine, like a stack frame.
type Span struct {
	tracer *Tracer
	trace  *trace

	ID     int
	Parent int // -1 for the root span
	Name   string
	Tier   string // optional tier/stage tag (edge/fog/server/cloud, ...)
	Begin  time.Time
	Finish time.Time
}

// NewTracer builds a tracer retaining up to capacity traces (<=0 means 64)
// on the given clock (nil means time.Now).
func NewTracer(now func() time.Time, capacity int) *Tracer {
	if now == nil {
		now = time.Now
	}
	if capacity <= 0 {
		capacity = 64
	}
	return &Tracer{now: now, cap: capacity, traces: make(map[string]*trace)}
}

// Start opens a new trace with a root span of the same name. An existing
// trace with the same id is replaced.
func (t *Tracer) Start(id, name string) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	tr := &trace{id: id, name: name}
	t.insertLocked(id, tr)
	root := &Span{tracer: t, trace: tr, ID: 0, Parent: -1, Name: name, Begin: t.now()}
	tr.spans = append(tr.spans, root)
	t.spans++
	return root
}

// insertLocked stores tr under id and maintains the eviction ring. A
// re-Start of a retained id moves it to the back of the ring — it is the
// freshest trace again — so `order` and `traces` can never disagree about
// which id the next eviction removes. Eviction runs after insertion; the
// just-inserted id sits at the back, so it is only evictable when it is the
// sole entry, which the cap (>= 1) forbids.
func (t *Tracer) insertLocked(id string, tr *trace) {
	if _, ok := t.traces[id]; ok {
		for i, o := range t.order {
			if o == id {
				t.order = append(t.order[:i], t.order[i+1:]...)
				break
			}
		}
	}
	t.order = append(t.order, id)
	t.traces[id] = tr
	for len(t.order) > t.cap {
		delete(t.traces, t.order[0])
		t.order = t.order[1:]
	}
}

// Child opens a sub-span under s.
func (s *Span) Child(name string) *Span {
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	c := &Span{
		tracer: s.tracer, trace: s.trace,
		ID: len(s.trace.spans), Parent: s.ID, Name: name, Begin: s.tracer.now(),
	}
	s.trace.spans = append(s.trace.spans, c)
	s.tracer.spans++
	return c
}

// SpanCount returns how many spans were ever created, including spans of
// evicted traces. It is a cheap change detector: pollers (the incident
// engine's graph builder) re-scan the ring only when the count moved.
func (t *Tracer) SpanCount() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spans
}

// SetTier tags the span with a tier/stage label. It takes the tracer lock so
// a concurrent Trace() export never reads the field mid-write.
func (s *Span) SetTier(tier string) {
	s.tracer.mu.Lock()
	s.Tier = tier
	s.tracer.mu.Unlock()
}

// End closes the span. Ending twice keeps the first finish time.
func (s *Span) End() {
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	if s.Finish.IsZero() {
		s.Finish = s.tracer.now()
	}
}

// SpanView is an exported span record.
type SpanView struct {
	ID          int     `json:"id"`
	Parent      int     `json:"parent"`
	Name        string  `json:"name"`
	Tier        string  `json:"tier,omitempty"`
	StartUnixNs int64   `json:"startUnixNs"`
	DurationMs  float64 `json:"durationMs"`
}

// TraceView is an exported trace: the root's wall time plus every span.
type TraceView struct {
	ID         string     `json:"id"`
	Name       string     `json:"name"`
	DurationMs float64    `json:"durationMs"`
	Spans      []SpanView `json:"spans"`
}

// IDs lists retained trace ids, oldest first.
func (t *Tracer) IDs() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.order))
	copy(out, t.order)
	return out
}

// Trace exports one trace by id. Unfinished spans are measured up to now.
func (t *Tracer) Trace(id string) (*TraceView, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.traces[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTrace, id)
	}
	now := t.now()
	tv := &TraceView{ID: tr.id, Name: tr.name, Spans: make([]SpanView, len(tr.spans))}
	for i, s := range tr.spans {
		end := s.Finish
		if end.IsZero() {
			end = now
		}
		tv.Spans[i] = SpanView{
			ID: s.ID, Parent: s.Parent, Name: s.Name, Tier: s.Tier,
			StartUnixNs: s.Begin.UnixNano(),
			DurationMs:  float64(end.Sub(s.Begin)) / float64(time.Millisecond),
		}
	}
	if len(tv.Spans) > 0 {
		tv.DurationMs = tv.Spans[0].DurationMs
	}
	return tv, nil
}

// TraceJSON exports one trace as JSON.
func (t *Tracer) TraceJSON(id string) ([]byte, error) {
	tv, err := t.Trace(id)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(tv, "", "  ")
}

// StageTime is one entry of a critical-path report: the exclusive time a
// stage (span name, optionally tier-tagged) contributed to the trace.
type StageTime struct {
	Stage       string  `json:"stage"`
	Tier        string  `json:"tier,omitempty"`
	ExclusiveMs float64 `json:"exclusiveMs"`
	Spans       int     `json:"spans"`
}

// Breakdown aggregates exclusive time per stage name: each span's duration
// minus the duration of its direct children, clamped at zero. The entries
// sum (within float rounding) to the root span's duration when children
// nest sequentially inside their parents — which is how the pipeline
// instruments its stages — making this the per-stage attribution of
// end-to-end latency.
func (tv *TraceView) Breakdown() []StageTime {
	childMs := make(map[int]float64, len(tv.Spans))
	for _, s := range tv.Spans {
		if s.Parent >= 0 {
			childMs[s.Parent] += s.DurationMs
		}
	}
	type key struct{ name, tier string }
	agg := make(map[key]*StageTime)
	var order []key
	for _, s := range tv.Spans {
		excl := s.DurationMs - childMs[s.ID]
		if excl < 0 {
			excl = 0
		}
		k := key{s.Name, s.Tier}
		st, ok := agg[k]
		if !ok {
			st = &StageTime{Stage: s.Name, Tier: s.Tier}
			agg[k] = st
			order = append(order, k)
		}
		st.ExclusiveMs += excl
		st.Spans++
	}
	out := make([]StageTime, 0, len(order))
	for _, k := range order {
		out = append(out, *agg[k])
	}
	return out
}
