package telemetry

import (
	"encoding/json"
	"errors"
	"math"
	"testing"
	"time"
)

// stepClock advances a fixed amount every reading, making span durations
// deterministic.
type stepClock struct {
	t    time.Time
	step time.Duration
}

func (c *stepClock) now() time.Time {
	out := c.t
	c.t = c.t.Add(c.step)
	return out
}

func TestTracerSpansAndJSON(t *testing.T) {
	clk := &stepClock{t: time.Unix(0, 0), step: 10 * time.Millisecond}
	tr := NewTracer(clk.now, 8)

	root := tr.Start("ingest-1", "ingest-tweets") // t=0
	encode := root.Child("encode")                // t=10
	encode.End()                                  // t=20 → encode 10ms
	produce := root.Child("produce")              // t=30
	produce.SetTier("fog")
	produce.End() // t=40 → produce 10ms
	root.End()    // t=50 → root 50ms

	tv, err := tr.Trace("ingest-1")
	if err != nil {
		t.Fatal(err)
	}
	if tv.Name != "ingest-tweets" || len(tv.Spans) != 3 {
		t.Fatalf("trace = %+v", tv)
	}
	if tv.DurationMs != 50 {
		t.Fatalf("root duration = %g, want 50", tv.DurationMs)
	}
	if tv.Spans[1].Name != "encode" || tv.Spans[1].Parent != 0 || tv.Spans[1].DurationMs != 10 {
		t.Fatalf("encode span = %+v", tv.Spans[1])
	}
	if tv.Spans[2].Tier != "fog" {
		t.Fatalf("tier tag lost: %+v", tv.Spans[2])
	}

	raw, err := tr.TraceJSON("ingest-1")
	if err != nil {
		t.Fatal(err)
	}
	var round TraceView
	if err := json.Unmarshal(raw, &round); err != nil {
		t.Fatal(err)
	}
	if round.ID != "ingest-1" || len(round.Spans) != 3 {
		t.Fatalf("JSON round-trip = %+v", round)
	}

	if _, err := tr.Trace("nope"); !errors.Is(err, ErrNoTrace) {
		t.Fatalf("unknown trace err = %v", err)
	}
}

func TestBreakdownSumsToRoot(t *testing.T) {
	clk := &stepClock{t: time.Unix(0, 0), step: 5 * time.Millisecond}
	tr := NewTracer(clk.now, 8)
	root := tr.Start("t", "pipeline")
	a := root.Child("stage-a")
	a.End()
	b := root.Child("stage-b")
	c := b.Child("stage-b.inner")
	c.End()
	b.End()
	root.End()

	tv, err := tr.Trace("t")
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, st := range tv.Breakdown() {
		if st.ExclusiveMs < 0 {
			t.Fatalf("negative exclusive time: %+v", st)
		}
		sum += st.ExclusiveMs
	}
	if math.Abs(sum-tv.DurationMs) > 1e-9 {
		t.Fatalf("breakdown sums to %g, root duration %g", sum, tv.DurationMs)
	}
}

func TestTracerRingEviction(t *testing.T) {
	clk := &stepClock{t: time.Unix(0, 0), step: time.Millisecond}
	tr := NewTracer(clk.now, 2)
	tr.Start("t1", "a").End()
	tr.Start("t2", "b").End()
	tr.Start("t3", "c").End()
	ids := tr.IDs()
	if len(ids) != 2 || ids[0] != "t2" || ids[1] != "t3" {
		t.Fatalf("retained = %v, want [t2 t3]", ids)
	}
	if _, err := tr.Trace("t1"); !errors.Is(err, ErrNoTrace) {
		t.Fatalf("evicted trace still present: %v", err)
	}
}

func TestUnfinishedSpanMeasuredToNow(t *testing.T) {
	clk := &stepClock{t: time.Unix(0, 0), step: 10 * time.Millisecond}
	tr := NewTracer(clk.now, 4)
	tr.Start("live", "open") // t=0
	tv, err := tr.Trace("live")
	if err != nil {
		t.Fatal(err)
	}
	if tv.DurationMs <= 0 {
		t.Fatalf("open span duration = %g, want > 0", tv.DurationMs)
	}
}
