package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Vec families give the registry a bounded dimensional layer: a
// CounterVec/GaugeVec/HistogramVec is one metric family fanned out over one
// label (for this system, almost always camera="..."), returning cached
// per-label handles whose record path is lock-free and allocation-free.
//
// Cardinality is bounded per family by a space-saving-style top-K
// heavy-hitter tracker. Every label value keeps an exact observation count
// on its handle forever (a few atomics — cheap at fleet scale), but only
// the K busiest values are materialized as real registry series; everyone
// else records into a single {label="~other"} rollup series. Membership is
// re-ranked at every snapshot (i.e. every scrape tick): a demoted child's
// materialized counts are folded into the rollup — so the sum over exposed
// series always equals the sum over all observations, and every exposed
// series stays monotone — and a promoted child restarts a fresh series from
// zero (its history stays inside the rollup; that is the space-saving
// trade). Each fold increments cityinfra_telemetry_series_rolled_up_total.
// A 200+-camera fleet therefore costs at most K+1 series per family in the
// registry and the TSDB rings, no matter how wide the fleet grows.

// RollupValue is the label value of the tail-rollup series.
const RollupValue = "~other"

// RolledUpMetric counts vec children folded back into a rollup series.
const RolledUpMetric = "cityinfra_telemetry_series_rolled_up_total"

// DefaultVecMaxSeries is the per-family top-K budget when the caller passes
// maxSeries <= 0.
const DefaultVecMaxSeries = 16

// vecChild is one label value's state: the exact counts that rank it, and
// the atomic target pointers its handle records through. Demotion retargets
// the pointers at the rollup instruments, so cached handles never go stale.
type vecChild struct {
	value string
	full  string // canonical family{label="value"} name

	obs  atomic.Uint64 // exact adds (counter) / observations (hist) / writes (gauge)
	sum  atomic.Uint64 // float64 bits: exact observed sum (hist) or last set (gauge)
	real atomic.Bool

	tgtC atomic.Pointer[Counter]
	tgtG atomic.Pointer[Gauge]
	tgtH atomic.Pointer[Histogram]
}

// vecFamily is the shared implementation behind the three Vec types.
type vecFamily struct {
	reg     *Registry
	name    string
	help    string
	label   string
	kind    metricKind
	buckets []float64
	maxK    int

	rolledUp *Counter // registry-wide fold accounting

	rollupC *Counter
	rollupG *Gauge
	rollupH *Histogram

	mu       sync.Mutex
	children map[string]*vecChild
	real     int // children currently materialized as registry series
}

// vec looks up or creates a family. Name/label/kind collisions panic like
// Registry.Counter does: they are wiring bugs.
func (r *Registry) vec(name, help, label string, kind metricKind, buckets []float64, maxSeries int) *vecFamily {
	if !validLabelKey(label) {
		panic(fmt.Errorf("telemetry: bad vec label name %q for %s", label, name))
	}
	if maxSeries <= 0 {
		maxSeries = DefaultVecMaxSeries
	}
	r.mu.Lock()
	for _, v := range r.vecs {
		if v.name == name {
			if v.kind != kind || v.label != label {
				r.mu.Unlock()
				panic(fmt.Errorf("%w: vec %s is %s over %q, requested %s over %q",
					ErrDuplicateMetric, name, v.kind, v.label, kind, label))
			}
			r.mu.Unlock()
			return v
		}
	}
	f := &vecFamily{
		reg: r, name: name, help: help, label: label, kind: kind,
		buckets: buckets, maxK: maxSeries,
		children: make(map[string]*vecChild),
	}
	r.vecs = append(r.vecs, f)
	r.mu.Unlock()

	f.rolledUp = r.Counter(RolledUpMetric,
		"vec children demoted out of their family's top-K and folded into its {~other} rollup series")
	rollupName := FormatName(name, LabelSet{{Key: label, Value: RollupValue}})
	switch kind {
	case kindCounter:
		f.rollupC = r.Counter(rollupName, help)
	case kindGauge:
		f.rollupG = r.Gauge(rollupName, help)
	case kindHistogram:
		f.rollupH = r.Histogram(rollupName, help, buckets)
	}
	return f
}

// child returns the cached child for one label value, creating it on first
// use. While the family has spare top-K budget the child is materialized
// immediately; past the budget it starts life recording into the rollup and
// earns a real series by out-observing a member (see rebalance).
func (f *vecFamily) child(value string) *vecChild {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[value]; ok {
		return c
	}
	c := &vecChild{
		value: value,
		full:  FormatName(f.name, LabelSet{{Key: f.label, Value: value}}),
	}
	if f.real < f.maxK {
		f.materialize(c)
	} else {
		f.retargetRollup(c)
	}
	f.children[value] = c
	return c
}

// materialize registers a fresh instrument for the child and points its
// handle target at it. Caller holds f.mu.
func (f *vecFamily) materialize(c *vecChild) {
	switch f.kind {
	case kindCounter:
		c.tgtC.Store(f.reg.Counter(c.full, f.help))
	case kindGauge:
		c.tgtG.Store(f.reg.Gauge(c.full, f.help))
	case kindHistogram:
		c.tgtH.Store(f.reg.Histogram(c.full, f.help, f.buckets))
	}
	c.real.Store(true)
	f.real++
}

// retargetRollup points a child's handle target at the family rollup
// instruments. Caller holds f.mu.
func (f *vecFamily) retargetRollup(c *vecChild) {
	switch f.kind {
	case kindCounter:
		c.tgtC.Store(f.rollupC)
	case kindGauge:
		c.tgtG.Store(f.rollupG)
	case kindHistogram:
		c.tgtH.Store(f.rollupH)
	}
}

// demote folds the child's materialized series into the rollup, drops the
// series from the registry, and retargets the handle. Caller holds f.mu.
func (f *vecFamily) demote(c *vecChild) {
	switch f.kind {
	case kindCounter:
		if v := c.tgtC.Load().Value(); v > 0 {
			f.rollupC.v.Add(v)
		}
	case kindHistogram:
		f.rollupH.mergeFrom(c.tgtH.Load())
	case kindGauge:
		// Gauges are point-in-time: nothing to fold. The rollup gauge holds
		// whatever a tail child last wrote.
	}
	f.reg.unregister(c.full)
	f.retargetRollup(c)
	c.real.Store(false)
	f.real--
	f.rolledUp.Inc()
}

// rebalance re-ranks children by exact observation count and swaps series
// membership so the top K stay materialized. Ties keep the incumbent (then
// break by label value), so uniform fleets don't churn. The registry calls
// this before every snapshot/exposition pass.
func (f *vecFamily) rebalance() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.children) <= f.maxK {
		return
	}
	kids := make([]*vecChild, 0, len(f.children))
	for _, c := range f.children {
		kids = append(kids, c)
	}
	sort.Slice(kids, func(i, j int) bool {
		oi, oj := kids[i].obs.Load(), kids[j].obs.Load()
		if oi != oj {
			return oi > oj
		}
		ri, rj := kids[i].real.Load(), kids[j].real.Load()
		if ri != rj {
			return ri
		}
		return kids[i].value < kids[j].value
	})
	for _, c := range kids[f.maxK:] {
		if c.real.Load() {
			f.demote(c)
		}
	}
	for _, c := range kids[:f.maxK] {
		if !c.real.Load() {
			f.materialize(c)
		}
	}
}

// VecChildInfo is one label value's exact accounting for fleet tables —
// available for every child, materialized or not.
type VecChildInfo struct {
	Value string  `json:"value"`
	Count uint64  `json:"count"`         // exact adds/observations
	Sum   float64 `json:"sum,omitempty"` // histogram: exact observed sum; gauge: last written value
	Real  bool    `json:"real"`          // currently materialized as its own series
}

// childrenInfo snapshots every child sorted by label value.
func (f *vecFamily) childrenInfo() []VecChildInfo {
	f.mu.Lock()
	out := make([]VecChildInfo, 0, len(f.children))
	for _, c := range f.children {
		out = append(out, VecChildInfo{
			Value: c.value,
			Count: c.obs.Load(),
			Sum:   math.Float64frombits(c.sum.Load()),
			Real:  c.real.Load(),
		})
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}

// seriesCount returns how many registry series the family currently owns
// (materialized children plus the rollup).
func (f *vecFamily) seriesCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.real + 1
}

// addFloatBits CAS-adds v into a float64-bits atomic.
func addFloatBits(u *atomic.Uint64, v float64) {
	for {
		old := u.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if u.CompareAndSwap(old, nw) {
			return
		}
	}
}

// CounterVec is a counter family over one label.
type CounterVec struct{ f *vecFamily }

// CounterVec returns the named counter family over the given label,
// creating it on first use. maxSeries is the top-K materialization budget
// (<= 0 means DefaultVecMaxSeries).
func (r *Registry) CounterVec(name, help, label string, maxSeries int) *CounterVec {
	return &CounterVec{f: r.vec(name, help, label, kindCounter, nil, maxSeries)}
}

// With returns the cached handle for one label value.
func (v *CounterVec) With(value string) *LabeledCounter {
	return &LabeledCounter{c: v.f.child(value)}
}

// Children snapshots exact per-label accounting, sorted by label value.
func (v *CounterVec) Children() []VecChildInfo { return v.f.childrenInfo() }

// SeriesCount returns materialized children + 1 (the rollup).
func (v *CounterVec) SeriesCount() int { return v.f.seriesCount() }

// LabeledCounter is a cached per-label counter handle. Add/Inc are two
// atomic adds and one atomic load — no locks, no allocation — and stay
// valid across demotion: a tail handle records into the rollup series.
type LabeledCounter struct{ c *vecChild }

// Inc adds one.
func (h *LabeledCounter) Inc() { h.Add(1) }

// Add adds n (non-positive deltas are ignored, like Counter.Add).
func (h *LabeledCounter) Add(n int) {
	if n <= 0 {
		return
	}
	h.c.obs.Add(uint64(n))
	h.c.tgtC.Load().Add(n)
}

// Value returns the exact per-label total, independent of series membership.
func (h *LabeledCounter) Value() uint64 { return h.c.obs.Load() }

// Real reports whether this label currently owns a materialized series.
func (h *LabeledCounter) Real() bool { return h.c.real.Load() }

// GaugeVec is a gauge family over one label. Tail children share the rollup
// gauge last-write-wins, so callers that only Set on signal (e.g. a nonzero
// burn rate) naturally promote exactly the labels that matter.
type GaugeVec struct{ f *vecFamily }

// GaugeVec returns the named gauge family over the given label.
func (r *Registry) GaugeVec(name, help, label string, maxSeries int) *GaugeVec {
	return &GaugeVec{f: r.vec(name, help, label, kindGauge, nil, maxSeries)}
}

// With returns the cached handle for one label value.
func (v *GaugeVec) With(value string) *LabeledGauge {
	return &LabeledGauge{c: v.f.child(value)}
}

// Children snapshots exact per-label accounting, sorted by label value.
func (v *GaugeVec) Children() []VecChildInfo { return v.f.childrenInfo() }

// SeriesCount returns materialized children + 1 (the rollup).
func (v *GaugeVec) SeriesCount() int { return v.f.seriesCount() }

// LabeledGauge is a cached per-label gauge handle.
type LabeledGauge struct{ c *vecChild }

// Set writes the gauge. Each write also counts toward the label's
// heavy-hitter rank.
func (h *LabeledGauge) Set(v float64) {
	h.c.obs.Add(1)
	h.c.sum.Store(math.Float64bits(v))
	h.c.tgtG.Load().Set(v)
}

// Value returns the last value written through this handle.
func (h *LabeledGauge) Value() float64 { return math.Float64frombits(h.c.sum.Load()) }

// Real reports whether this label currently owns a materialized series.
func (h *LabeledGauge) Real() bool { return h.c.real.Load() }

// HistogramVec is a histogram family over one label.
type HistogramVec struct{ f *vecFamily }

// HistogramVec returns the named histogram family over the given label with
// the given bucket bounds (nil means DefBuckets; first registration wins).
func (r *Registry) HistogramVec(name, help, label string, buckets []float64, maxSeries int) *HistogramVec {
	return &HistogramVec{f: r.vec(name, help, label, kindHistogram, buckets, maxSeries)}
}

// With returns the cached handle for one label value.
func (v *HistogramVec) With(value string) *LabeledHistogram {
	return &LabeledHistogram{c: v.f.child(value)}
}

// Children snapshots exact per-label accounting, sorted by label value.
func (v *HistogramVec) Children() []VecChildInfo { return v.f.childrenInfo() }

// SeriesCount returns materialized children + 1 (the rollup).
func (v *HistogramVec) SeriesCount() int { return v.f.seriesCount() }

// LabeledHistogram is a cached per-label histogram handle.
type LabeledHistogram struct{ c *vecChild }

// Observe records one value: exact per-label count and sum on the handle,
// plus the bucket observation on whichever series (own or rollup) the label
// currently owns.
func (h *LabeledHistogram) Observe(v float64) {
	h.c.obs.Add(1)
	addFloatBits(&h.c.sum, v)
	h.c.tgtH.Load().Observe(v)
}

// Count returns the exact per-label observation count.
func (h *LabeledHistogram) Count() uint64 { return h.c.obs.Load() }

// Sum returns the exact per-label observed sum.
func (h *LabeledHistogram) Sum() float64 { return math.Float64frombits(h.c.sum.Load()) }

// Mean returns the exact per-label mean observation (0 when empty).
func (h *LabeledHistogram) Mean() float64 {
	c := h.c.obs.Load()
	if c == 0 {
		return 0
	}
	return h.Sum() / float64(c)
}

// Quantile estimates the q-quantile from the series this label records into:
// exact bucket data for top-K members, the shared tail pool otherwise.
func (h *LabeledHistogram) Quantile(q float64) float64 { return h.c.tgtH.Load().Quantile(q) }

// Real reports whether this label currently owns a materialized series.
func (h *LabeledHistogram) Real() bool { return h.c.real.Load() }
