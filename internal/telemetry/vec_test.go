package telemetry

import (
	"strings"
	"testing"
)

func TestEscapeRoundTrip(t *testing.T) {
	cases := []string{
		"plain",
		`back\slash`,
		`quo"te`,
		"new\nline",
		`all \ of " them` + "\n together \\n",
		"",
		"unicode Δ camera-7",
	}
	for _, v := range cases {
		esc := EscapeLabelValue(v)
		if strings.ContainsRune(esc, '\n') {
			t.Errorf("EscapeLabelValue(%q) = %q still contains a raw newline", v, esc)
		}
		got, err := UnescapeLabelValue(esc)
		if err != nil {
			t.Fatalf("UnescapeLabelValue(%q): %v", esc, err)
		}
		if got != v {
			t.Errorf("round trip %q -> %q -> %q", v, esc, got)
		}
	}
	for _, bad := range []string{`\x`, `half\`, `\u0041`} {
		if _, err := UnescapeLabelValue(bad); err == nil {
			t.Errorf("UnescapeLabelValue(%q): want error", bad)
		}
	}
}

func TestParseNameCanonical(t *testing.T) {
	full := FormatName("cityinfra_frames_total", LabelSet{
		{Key: "tier", Value: "fog"},
		{Key: "camera", Value: `cam "7"` + "\n" + `\end`},
	})
	family, labels, err := ParseName(full)
	if err != nil {
		t.Fatalf("ParseName(%q): %v", full, err)
	}
	if family != "cityinfra_frames_total" {
		t.Fatalf("family = %q", family)
	}
	// Canonical order is key-sorted.
	if labels[0].Key != "camera" || labels[1].Key != "tier" {
		t.Fatalf("labels not key-sorted: %+v", labels)
	}
	if got := labels.Get("camera"); got != `cam "7"`+"\n"+`\end` {
		t.Fatalf("camera label = %q", got)
	}
	// Re-rendering the parsed set reproduces the canonical name.
	if again := FormatName(family, labels); again != full {
		t.Fatalf("FormatName(ParseName(x)) = %q, want %q", again, full)
	}

	for _, bad := range []string{
		`m{camera="cam-7"`,         // unclosed brace
		`m{}`,                      // empty matcher
		`m{camera=}`,               // missing quotes
		`m{camera="a\q"}`,          // bad escape
		`m{camera="a}`,             // unterminated value
		`m{1bad="v"}`,              // bad label name
		`m{camera="a",}`,           // trailing comma
		`m{camera="a" tier="fog"}`, // missing comma
	} {
		if _, _, err := ParseName(bad); err == nil {
			t.Errorf("ParseName(%q): want error", bad)
		}
	}
}

func TestWithLabelEscapes(t *testing.T) {
	name := WithLabel("m_total", "path", "C:\\tmp\"x\"\nend")
	want := `m_total{path="C:\\tmp\"x\"\nend"}`
	if name != want {
		t.Fatalf("WithLabel = %q, want %q", name, want)
	}
	_, labels, err := ParseName(name)
	if err != nil {
		t.Fatalf("ParseName(WithLabel(...)): %v", err)
	}
	if got := labels.Get("path"); got != "C:\\tmp\"x\"\nend" {
		t.Fatalf("parsed value = %q", got)
	}
}

func TestCounterVecBoundedCardinality(t *testing.T) {
	reg := NewRegistry()
	vec := reg.CounterVec("fleet_frames_total", "frames per camera", "camera", 3)
	// 8 cameras, camera i adds i+1 so the heavy hitters are unambiguous.
	handles := make([]*LabeledCounter, 8)
	for i := range handles {
		handles[i] = vec.With(camID(i))
		handles[i].Add(i + 1)
	}
	reg.Snapshot() // triggers rebalance
	if n := vec.SeriesCount(); n != 4 {
		t.Fatalf("SeriesCount = %d, want K+1 = 4", n)
	}
	// The top 3 by count (cam-5, cam-6, cam-7) must be the materialized set.
	for i, h := range handles {
		wantReal := i >= 5
		if h.Real() != wantReal {
			t.Errorf("camera %d Real = %v, want %v", i, h.Real(), wantReal)
		}
		if h.Value() != uint64(i+1) {
			t.Errorf("camera %d exact Value = %d, want %d", i, h.Value(), i+1)
		}
	}
	// Exposed series: exactly the top-3 children plus the rollup, and the
	// exposed totals sum to the total observations.
	var exposed, total uint64
	names := map[string]bool{}
	for _, p := range reg.Snapshot() {
		if strings.HasPrefix(p.Name, "fleet_frames_total{") {
			names[p.Name] = true
			exposed += uint64(p.Value)
		}
	}
	for _, h := range handles {
		total += h.Value()
	}
	if len(names) != 4 {
		t.Fatalf("exposed %d series %v, want 4", len(names), names)
	}
	if !names[`fleet_frames_total{camera="~other"}`] {
		t.Fatalf("missing rollup series in %v", names)
	}
	if exposed != total {
		t.Fatalf("exposed sum %d != total observations %d", exposed, total)
	}
	// Demotions were accounted: 8 admissions into 3 slots = at least the
	// churn of the 5 tail children ever having been materialized.
	if v := reg.Counter(RolledUpMetric, "").Value(); v == 0 {
		t.Fatalf("%s = 0, want > 0 after demotions", RolledUpMetric)
	}
}

func TestCounterVecPromotionKeepsMonotonicity(t *testing.T) {
	reg := NewRegistry()
	vec := reg.CounterVec("v_total", "v", "camera", 2)
	a, b, c := vec.With("a"), vec.With("b"), vec.With("c")
	a.Add(10)
	b.Add(10)
	reg.Snapshot()
	// c is tail; it out-observes b and must be promoted at the next snapshot.
	c.Add(25)
	prev := seriesValues(reg, "v_total")
	reg.Snapshot()
	cur := seriesValues(reg, "v_total")
	if !c.Real() || b.Real() {
		t.Fatalf("want c promoted and b demoted; c.Real=%v b.Real=%v", c.Real(), b.Real())
	}
	// Every series present in both snapshots must be monotone non-decreasing
	// (the rollup absorbs folds; promoted series restart fresh).
	for name, v := range cur {
		if pv, ok := prev[name]; ok && v < pv {
			t.Errorf("series %s went backwards: %g -> %g", name, pv, v)
		}
	}
	_ = a
}

func TestHistogramVecRollupFolding(t *testing.T) {
	reg := NewRegistry()
	vec := reg.HistogramVec("lat_seconds", "latency", "camera", ExpBuckets(0.001, 2, 10), 2)
	h1, h2, h3 := vec.With("a"), vec.With("b"), vec.With("c")
	for i := 0; i < 4; i++ {
		h1.Observe(0.002)
	}
	for i := 0; i < 3; i++ {
		h2.Observe(0.004)
	}
	// c arrives past the budget: its observations land in the rollup.
	for i := 0; i < 10; i++ {
		h3.Observe(0.01)
	}
	if h3.Count() != 10 || h3.Real() {
		t.Fatalf("exact tail accounting: count %d real %v", h3.Count(), h3.Real())
	}
	reg.Snapshot() // c (10 obs) promotes, b (3 obs) demotes into rollup
	if !h3.Real() || h2.Real() {
		t.Fatalf("want c promoted and b demoted; c.Real=%v b.Real=%v", h3.Real(), h2.Real())
	}
	// Total observation count across exposed histogram series must equal 17.
	var exposed uint64
	for _, p := range reg.Snapshot() {
		if strings.HasPrefix(p.Name, "lat_seconds{") {
			exposed += p.Count
		}
	}
	if exposed != 17 {
		t.Fatalf("exposed histogram count = %d, want 17", exposed)
	}
	if h2.Sum() == 0 || h2.Mean() == 0 {
		t.Fatalf("demoted child lost exact accounting: sum %g mean %g", h2.Sum(), h2.Mean())
	}
}

func TestGaugeVecSignalPromotion(t *testing.T) {
	reg := NewRegistry()
	vec := reg.GaugeVec("burn", "burn rate", "camera", 2)
	quiet1, quiet2 := vec.With("a"), vec.With("b")
	hot := vec.With("hot")
	// Only the hot camera writes (write-on-signal): it must take a slot.
	hot.Set(4.5)
	hot.Set(6.5)
	reg.Snapshot()
	if !hot.Real() {
		t.Fatalf("hot camera not materialized after signal writes")
	}
	if hot.Value() != 6.5 {
		t.Fatalf("hot.Value = %g", hot.Value())
	}
	_, _ = quiet1, quiet2
}

func camID(i int) string {
	return "cam-" + string(rune('0'+i))
}

func seriesValues(reg *Registry, family string) map[string]float64 {
	out := map[string]float64{}
	for _, p := range reg.Snapshot() {
		if strings.HasPrefix(p.Name, family+"{") {
			out[p.Name] = p.Value
		}
	}
	return out
}
