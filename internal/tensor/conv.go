package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution or pooling operation
// over NCHW tensors.
type ConvGeom struct {
	InC, InH, InW int // input channels, height, width
	KH, KW        int // kernel height, width
	Stride        int
	Pad           int
}

// OutH returns the output height for the geometry.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.KH)/g.Stride + 1 }

// OutW returns the output width for the geometry.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.KW)/g.Stride + 1 }

// Validate returns an error when the geometry does not produce a positive
// output plane.
func (g ConvGeom) Validate() error {
	if g.Stride <= 0 {
		return fmt.Errorf("%w: stride %d", ErrShape, g.Stride)
	}
	if g.OutH() <= 0 || g.OutW() <= 0 {
		return fmt.Errorf("%w: conv geometry %+v yields empty output", ErrShape, g)
	}
	return nil
}

// Im2Col unrolls a single NCHW image (rank-3 tensor [C,H,W]) into a matrix of
// shape [C*KH*KW, OutH*OutW] so that convolution becomes a matrix product
// with the filter matrix [outC, C*KH*KW].
func Im2Col(img *Tensor, g ConvGeom) (*Tensor, error) {
	if img.Dims() != 3 || img.Dim(0) != g.InC || img.Dim(1) != g.InH || img.Dim(2) != g.InW {
		return nil, fmt.Errorf("%w: Im2Col image %v vs geom %+v", ErrShape, img.Shape(), g)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	oh, ow := g.OutH(), g.OutW()
	cols := New(g.InC*g.KH*g.KW, oh*ow)
	src := img.Data()
	dst := cols.Data()
	row := 0
	for c := 0; c < g.InC; c++ {
		plane := src[c*g.InH*g.InW:]
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				base := row * oh * ow
				for y := 0; y < oh; y++ {
					sy := y*g.Stride + kh - g.Pad
					for x := 0; x < ow; x++ {
						sx := x*g.Stride + kw - g.Pad
						v := 0.0
						if sy >= 0 && sy < g.InH && sx >= 0 && sx < g.InW {
							v = plane[sy*g.InW+sx]
						}
						dst[base+y*ow+x] = v
					}
				}
				row++
			}
		}
	}
	return cols, nil
}

// Col2Im is the adjoint of Im2Col: it scatters a [C*KH*KW, OutH*OutW] matrix
// of column gradients back into an image-shaped [C,H,W] tensor, accumulating
// where receptive fields overlap.
func Col2Im(cols *Tensor, g ConvGeom) (*Tensor, error) {
	oh, ow := g.OutH(), g.OutW()
	if cols.Dims() != 2 || cols.Dim(0) != g.InC*g.KH*g.KW || cols.Dim(1) != oh*ow {
		return nil, fmt.Errorf("%w: Col2Im cols %v vs geom %+v", ErrShape, cols.Shape(), g)
	}
	img := New(g.InC, g.InH, g.InW)
	src := cols.Data()
	dst := img.Data()
	row := 0
	for c := 0; c < g.InC; c++ {
		plane := dst[c*g.InH*g.InW:]
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				base := row * oh * ow
				for y := 0; y < oh; y++ {
					sy := y*g.Stride + kh - g.Pad
					if sy < 0 || sy >= g.InH {
						continue
					}
					for x := 0; x < ow; x++ {
						sx := x*g.Stride + kw - g.Pad
						if sx < 0 || sx >= g.InW {
							continue
						}
						plane[sy*g.InW+sx] += src[base+y*ow+x]
					}
				}
				row++
			}
		}
	}
	return img, nil
}
