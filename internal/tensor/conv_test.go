package tensor

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestConvGeomOutput(t *testing.T) {
	tests := []struct {
		name   string
		g      ConvGeom
		oh, ow int
	}{
		{"same-pad-3x3", ConvGeom{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}, 8, 8},
		{"valid-3x3", ConvGeom{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 0}, 6, 6},
		{"stride-2", ConvGeom{InC: 2, InH: 8, InW: 8, KH: 2, KW: 2, Stride: 2, Pad: 0}, 4, 4},
		{"rect", ConvGeom{InC: 1, InH: 5, InW: 7, KH: 3, KW: 3, Stride: 2, Pad: 1}, 3, 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.g.Validate(); err != nil {
				t.Fatal(err)
			}
			if tt.g.OutH() != tt.oh || tt.g.OutW() != tt.ow {
				t.Fatalf("out = %dx%d, want %dx%d", tt.g.OutH(), tt.g.OutW(), tt.oh, tt.ow)
			}
		})
	}
}

func TestConvGeomValidate(t *testing.T) {
	bad := ConvGeom{InC: 1, InH: 2, InW: 2, KH: 5, KW: 5, Stride: 1}
	if err := bad.Validate(); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
	zero := ConvGeom{InC: 1, InH: 4, InW: 4, KH: 2, KW: 2, Stride: 0}
	if err := zero.Validate(); !errors.Is(err, ErrShape) {
		t.Fatalf("stride-0 err = %v, want ErrShape", err)
	}
}

// convDirect is a reference convolution used to validate the im2col path.
func convDirect(img *Tensor, w *Tensor, g ConvGeom, outC int) *Tensor {
	oh, ow := g.OutH(), g.OutW()
	out := New(outC, oh, ow)
	for oc := 0; oc < outC; oc++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				s := 0.0
				for c := 0; c < g.InC; c++ {
					for kh := 0; kh < g.KH; kh++ {
						for kw := 0; kw < g.KW; kw++ {
							sy := y*g.Stride + kh - g.Pad
							sx := x*g.Stride + kw - g.Pad
							if sy < 0 || sy >= g.InH || sx < 0 || sx >= g.InW {
								continue
							}
							s += img.At(c, sy, sx) * w.At(oc, c*g.KH*g.KW+kh*g.KW+kw)
						}
					}
				}
				out.Set(s, oc, y, x)
			}
		}
	}
	return out
}

func TestIm2ColMatchesDirectConv(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	geoms := []ConvGeom{
		{InC: 1, InH: 5, InW: 5, KH: 3, KW: 3, Stride: 1, Pad: 0},
		{InC: 2, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{InC: 3, InH: 8, InW: 8, KH: 2, KW: 2, Stride: 2, Pad: 0},
		{InC: 2, InH: 7, InW: 5, KH: 3, KW: 3, Stride: 2, Pad: 1},
	}
	for gi, g := range geoms {
		img := Randn(rng, 1, g.InC, g.InH, g.InW)
		outC := 4
		w := Randn(rng, 1, outC, g.InC*g.KH*g.KW)

		cols, err := Im2Col(img, g)
		if err != nil {
			t.Fatal(err)
		}
		prod, err := MatMul(w, cols)
		if err != nil {
			t.Fatal(err)
		}
		got := prod.MustReshape(outC, g.OutH(), g.OutW())
		want := convDirect(img, w, g, outC)
		if !AllClose(got, want, 1e-10) {
			t.Fatalf("geom %d: im2col conv disagrees with direct conv", gi)
		}
	}
}

func TestIm2ColShapeError(t *testing.T) {
	g := ConvGeom{InC: 2, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if _, err := Im2Col(New(1, 4, 4), g); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

// Col2Im must be the exact adjoint of Im2Col: <Im2Col(x), y> == <x, Col2Im(y)>.
func TestCol2ImAdjointProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		g := ConvGeom{
			InC: 1 + rng.Intn(3), InH: 4 + rng.Intn(5), InW: 4 + rng.Intn(5),
			KH: 1 + rng.Intn(3), KW: 1 + rng.Intn(3),
			Stride: 1 + rng.Intn(2), Pad: rng.Intn(2),
		}
		if g.Validate() != nil {
			continue
		}
		x := Randn(rng, 1, g.InC, g.InH, g.InW)
		cols, err := Im2Col(x, g)
		if err != nil {
			t.Fatal(err)
		}
		y := Randn(rng, 1, cols.Dim(0), cols.Dim(1))
		back, err := Col2Im(y, g)
		if err != nil {
			t.Fatal(err)
		}
		lhs := 0.0
		for i, v := range cols.Data() {
			lhs += v * y.Data()[i]
		}
		rhs := 0.0
		for i, v := range x.Data() {
			rhs += v * back.Data()[i]
		}
		if math.Abs(lhs-rhs) > 1e-8*(1+math.Abs(lhs)) {
			t.Fatalf("trial %d: adjoint identity violated: %g vs %g (geom %+v)", trial, lhs, rhs, g)
		}
	}
}

func TestCol2ImShapeError(t *testing.T) {
	g := ConvGeom{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if _, err := Col2Im(New(5, 5), g); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}
