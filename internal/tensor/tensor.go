// Package tensor implements dense row-major float64 tensors and the linear
// algebra primitives (matmul, im2col, reductions, broadcasting helpers) that
// the neural-network stack in internal/nn is built on.
//
// The package is deliberately self-contained and allocation-conscious: hot
// paths (MatMul, Im2Col) operate on flat slices and accept destination
// tensors where it matters. All randomness is injected via *rand.Rand so that
// training runs are reproducible.
package tensor

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// ErrShape is returned (wrapped) by operations whose operand shapes are
// incompatible.
var ErrShape = errors.New("tensor: shape mismatch")

// Tensor is a dense, row-major, float64 n-dimensional array.
type Tensor struct {
	shape []int
	data  []float64
}

// New creates a zero-filled tensor with the given shape. A zero-dimensional
// tensor (no shape arguments) holds a single scalar element.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic("tensor: negative dimension " + strconv.Itoa(d))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); callers who need isolation should pass a copy.
func FromSlice(data []float64, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		return nil, fmt.Errorf("%w: data length %d does not fit shape %v", ErrShape, len(data), shape)
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}, nil
}

// MustFromSlice is FromSlice for statically known-good inputs; it panics on
// mismatch and is intended for tests and literals.
func MustFromSlice(data []float64, shape ...int) *Tensor {
	t, err := FromSlice(data, shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// Full creates a tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Randn fills a new tensor with N(0, std) samples drawn from rng.
func Randn(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = rng.NormFloat64() * std
	}
	return t
}

// RandUniform fills a new tensor with Uniform(lo, hi) samples drawn from rng.
func RandUniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = lo + rng.Float64()*(hi-lo)
	}
	return t
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the backing slice. Mutations are visible to the tensor; this
// is the intended fast path for layer implementations.
func (t *Tensor) Data() []float64 { return t.data }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	data := make([]float64, len(t.data))
	copy(data, t.data)
	return &Tensor{shape: append([]int(nil), t.shape...), data: data}
}

// Reshape returns a view with a new shape sharing the same backing data.
// One dimension may be -1, in which case it is inferred.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	shape = append([]int(nil), shape...)
	infer := -1
	n := 1
	for i, d := range shape {
		switch {
		case d == -1:
			if infer >= 0 {
				return nil, fmt.Errorf("%w: multiple -1 dims in %v", ErrShape, shape)
			}
			infer = i
		case d < 0:
			return nil, fmt.Errorf("%w: negative dim in %v", ErrShape, shape)
		default:
			n *= d
		}
	}
	if infer >= 0 {
		if n == 0 || len(t.data)%n != 0 {
			return nil, fmt.Errorf("%w: cannot infer dim for %v from %d elements", ErrShape, shape, len(t.data))
		}
		shape[infer] = len(t.data) / n
		n = len(t.data)
	}
	if n != len(t.data) {
		return nil, fmt.Errorf("%w: reshape %v to %v", ErrShape, t.shape, shape)
	}
	return &Tensor{shape: shape, data: t.data}, nil
}

// MustReshape is Reshape that panics on error, for statically valid shapes.
func (t *Tensor) MustReshape(shape ...int) *Tensor {
	r, err := t.Reshape(shape...)
	if err != nil {
		panic(err)
	}
	return r
}

func (t *Tensor) index(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d vs shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.index(idx)] }

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.index(idx)] = v }

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// CopyFrom copies src's data into t. Shapes must have equal sizes.
func (t *Tensor) CopyFrom(src *Tensor) error {
	if len(src.data) != len(t.data) {
		return fmt.Errorf("%w: copy %v into %v", ErrShape, src.shape, t.shape)
	}
	copy(t.data, src.data)
	return nil
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

func (t *Tensor) binary(o *Tensor, f func(a, b float64) float64) (*Tensor, error) {
	if !t.SameShape(o) {
		return nil, fmt.Errorf("%w: %v vs %v", ErrShape, t.shape, o.shape)
	}
	out := New(t.shape...)
	for i := range t.data {
		out.data[i] = f(t.data[i], o.data[i])
	}
	return out, nil
}

// Add returns t + o elementwise.
func (t *Tensor) Add(o *Tensor) (*Tensor, error) {
	return t.binary(o, func(a, b float64) float64 { return a + b })
}

// Sub returns t - o elementwise.
func (t *Tensor) Sub(o *Tensor) (*Tensor, error) {
	return t.binary(o, func(a, b float64) float64 { return a - b })
}

// Mul returns t * o elementwise (Hadamard product).
func (t *Tensor) Mul(o *Tensor) (*Tensor, error) {
	return t.binary(o, func(a, b float64) float64 { return a * b })
}

// AddInPlace accumulates o into t elementwise.
func (t *Tensor) AddInPlace(o *Tensor) error {
	if len(t.data) != len(o.data) {
		return fmt.Errorf("%w: %v vs %v", ErrShape, t.shape, o.shape)
	}
	for i, v := range o.data {
		t.data[i] += v
	}
	return nil
}

// AxpyInPlace computes t += alpha*o elementwise.
func (t *Tensor) AxpyInPlace(alpha float64, o *Tensor) error {
	if len(t.data) != len(o.data) {
		return fmt.Errorf("%w: %v vs %v", ErrShape, t.shape, o.shape)
	}
	for i, v := range o.data {
		t.data[i] += alpha * v
	}
	return nil
}

// Scale multiplies every element by alpha, in place, and returns t.
func (t *Tensor) Scale(alpha float64) *Tensor {
	for i := range t.data {
		t.data[i] *= alpha
	}
	return t
}

// Apply returns a new tensor with f applied to every element.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	out := New(t.shape...)
	for i, v := range t.data {
		out.data[i] = f(v)
	}
	return out
}

// ApplyInPlace applies f to every element in place and returns t.
func (t *Tensor) ApplyInPlace(f func(float64) float64) *Tensor {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
	return t
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Max returns the maximum element and its flat index. It panics on empty
// tensors, which indicate a programming error.
func (t *Tensor) Max() (float64, int) {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	best, at := t.data[0], 0
	for i, v := range t.data {
		if v > best {
			best, at = v, i
		}
	}
	return best, at
}

// ArgMax returns the flat index of the maximum element.
func (t *Tensor) ArgMax() int {
	_, i := t.Max()
	return i
}

// L2Norm returns the Euclidean norm of all elements.
func (t *Tensor) L2Norm() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MatMul computes the matrix product of two rank-2 tensors: [m,k]·[k,n] → [m,n].
func MatMul(a, b *Tensor) (*Tensor, error) {
	if a.Dims() != 2 || b.Dims() != 2 {
		return nil, fmt.Errorf("%w: MatMul needs rank-2 operands, got %v and %v", ErrShape, a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("%w: MatMul inner dims %d vs %d", ErrShape, k, k2)
	}
	out := New(m, n)
	matMulInto(out.data, a.data, b.data, m, k, n)
	return out, nil
}

// matMulInto computes dst = A·B with A [m,k], B [k,n], dst [m,n], using an
// ikj loop order that streams B rows for cache friendliness.
func matMulInto(dst, a, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		di := dst[i*n : (i+1)*n]
		for x := range di {
			di[x] = 0
		}
		ai := a[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				di[j] += av * bv
			}
		}
	}
}

// MatMulTransB computes A·Bᵀ for A [m,k] and B [n,k] → [m,n].
func MatMulTransB(a, b *Tensor) (*Tensor, error) {
	if a.Dims() != 2 || b.Dims() != 2 {
		return nil, fmt.Errorf("%w: MatMulTransB needs rank-2 operands", ErrShape)
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("%w: MatMulTransB inner dims %d vs %d", ErrShape, k, k2)
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		ai := a.data[i*k : (i+1)*k]
		oi := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.data[j*k : (j+1)*k]
			s := 0.0
			for p, av := range ai {
				s += av * bj[p]
			}
			oi[j] = s
		}
	}
	return out, nil
}

// MatMulTransA computes Aᵀ·B for A [k,m] and B [k,n] → [m,n].
func MatMulTransA(a, b *Tensor) (*Tensor, error) {
	if a.Dims() != 2 || b.Dims() != 2 {
		return nil, fmt.Errorf("%w: MatMulTransA needs rank-2 operands", ErrShape)
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("%w: MatMulTransA inner dims %d vs %d", ErrShape, k, k2)
	}
	out := New(m, n)
	for p := 0; p < k; p++ {
		ap := a.data[p*m : (p+1)*m]
		bp := b.data[p*n : (p+1)*n]
		for i, av := range ap {
			if av == 0 {
				continue
			}
			oi := out.data[i*n : (i+1)*n]
			for j, bv := range bp {
				oi[j] += av * bv
			}
		}
	}
	return out, nil
}

// Transpose2D returns the transpose of a rank-2 tensor.
func Transpose2D(a *Tensor) (*Tensor, error) {
	if a.Dims() != 2 {
		return nil, fmt.Errorf("%w: Transpose2D needs rank-2, got %v", ErrShape, a.shape)
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out, nil
}

// Row returns a view-free copy of row i of a rank-2 tensor as a rank-1 tensor.
func (t *Tensor) Row(i int) *Tensor {
	if t.Dims() != 2 {
		panic(fmt.Sprintf("tensor: Row on rank-%d tensor", t.Dims()))
	}
	n := t.shape[1]
	out := New(n)
	copy(out.data, t.data[i*n:(i+1)*n])
	return out
}

// SetRow copies a rank-1 tensor into row i of a rank-2 tensor.
func (t *Tensor) SetRow(i int, row *Tensor) error {
	if t.Dims() != 2 || row.Size() != t.shape[1] {
		return fmt.Errorf("%w: SetRow %v into %v", ErrShape, row.shape, t.shape)
	}
	copy(t.data[i*t.shape[1]:(i+1)*t.shape[1]], row.data)
	return nil
}

// SoftmaxRows applies a numerically stable softmax to each row of a rank-2
// tensor, returning a new tensor.
func SoftmaxRows(a *Tensor) (*Tensor, error) {
	if a.Dims() != 2 {
		return nil, fmt.Errorf("%w: SoftmaxRows needs rank-2, got %v", ErrShape, a.shape)
	}
	m, n := a.shape[0], a.shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		dst := out.data[i*n : (i+1)*n]
		mx := row[0]
		for _, v := range row[1:] {
			if v > mx {
				mx = v
			}
		}
		s := 0.0
		for j, v := range row {
			e := math.Exp(v - mx)
			dst[j] = e
			s += e
		}
		inv := 1.0 / s
		for j := range dst {
			dst[j] *= inv
		}
	}
	return out, nil
}

// Entropy returns the Shannon entropy (nats) of a probability vector,
// treating zero entries as contributing zero.
func Entropy(probs []float64) float64 {
	h := 0.0
	for _, p := range probs {
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// String renders small tensors for debugging; large tensors are summarized.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.data) <= 16 {
		fmt.Fprintf(&b, "%v", t.data)
	} else {
		fmt.Fprintf(&b, "[%g %g ... %g] (n=%d, mean=%.4g)",
			t.data[0], t.data[1], t.data[len(t.data)-1], len(t.data), t.Mean())
	}
	return b.String()
}

// AllClose reports whether all corresponding elements of a and b differ by at
// most tol. Tensors of different sizes are never close.
func AllClose(a, b *Tensor, tol float64) bool {
	if len(a.data) != len(b.data) {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}
