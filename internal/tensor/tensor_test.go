package tensor

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndShape(t *testing.T) {
	tests := []struct {
		name  string
		shape []int
		size  int
	}{
		{"scalar", nil, 1},
		{"vector", []int{5}, 5},
		{"matrix", []int{3, 4}, 12},
		{"image", []int{3, 8, 8}, 192},
		{"empty-dim", []int{0, 4}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			x := New(tt.shape...)
			if x.Size() != tt.size {
				t.Fatalf("Size() = %d, want %d", x.Size(), tt.size)
			}
			if got := x.Shape(); len(got) != len(tt.shape) {
				t.Fatalf("Shape() = %v, want %v", got, tt.shape)
			}
		})
	}
}

func TestFromSliceShapeMismatch(t *testing.T) {
	_, err := FromSlice([]float64{1, 2, 3}, 2, 2)
	if !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(7.5, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At = %g, want 7.5", got)
	}
	if got := x.At(0, 0, 0); got != 0 {
		t.Fatalf("untouched element = %g, want 0", got)
	}
}

func TestReshape(t *testing.T) {
	x := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y, err := x.Reshape(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if y.At(2, 1) != 6 {
		t.Fatalf("reshape lost data: %v", y.Data())
	}
	z, err := x.Reshape(-1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if z.Dim(0) != 3 {
		t.Fatalf("inferred dim = %d, want 3", z.Dim(0))
	}
	if _, err := x.Reshape(4, 2); !errors.Is(err, ErrShape) {
		t.Fatalf("bad reshape err = %v, want ErrShape", err)
	}
	if _, err := x.Reshape(-1, -1); !errors.Is(err, ErrShape) {
		t.Fatalf("double -1 err = %v, want ErrShape", err)
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := New(4)
	y := x.MustReshape(2, 2)
	y.Set(9, 1, 1)
	if x.At(3) != 9 {
		t.Fatal("reshape should share backing data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := MustFromSlice([]float64{10, 20, 30, 40}, 2, 2)

	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.At(1, 1) != 44 {
		t.Fatalf("Add = %v", sum.Data())
	}
	diff, err := b.Sub(a)
	if err != nil {
		t.Fatal(err)
	}
	if diff.At(0, 0) != 9 {
		t.Fatalf("Sub = %v", diff.Data())
	}
	prod, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	if prod.At(1, 0) != 90 {
		t.Fatalf("Mul = %v", prod.Data())
	}
	c := New(3)
	if _, err := a.Add(c); !errors.Is(err, ErrShape) {
		t.Fatalf("mismatched Add err = %v", err)
	}
}

func TestInPlaceOps(t *testing.T) {
	a := MustFromSlice([]float64{1, 2}, 2)
	b := MustFromSlice([]float64{3, 4}, 2)
	if err := a.AddInPlace(b); err != nil {
		t.Fatal(err)
	}
	if a.At(1) != 6 {
		t.Fatalf("AddInPlace = %v", a.Data())
	}
	if err := a.AxpyInPlace(0.5, b); err != nil {
		t.Fatal(err)
	}
	if a.At(0) != 5.5 {
		t.Fatalf("AxpyInPlace = %v", a.Data())
	}
	a.Scale(2)
	if a.At(0) != 11 {
		t.Fatalf("Scale = %v", a.Data())
	}
}

func TestReductions(t *testing.T) {
	x := MustFromSlice([]float64{-1, 5, 2, 0}, 4)
	if x.Sum() != 6 {
		t.Fatalf("Sum = %g", x.Sum())
	}
	if x.Mean() != 1.5 {
		t.Fatalf("Mean = %g", x.Mean())
	}
	v, i := x.Max()
	if v != 5 || i != 1 {
		t.Fatalf("Max = %g at %d", v, i)
	}
	if x.ArgMax() != 1 {
		t.Fatalf("ArgMax = %d", x.ArgMax())
	}
	if got := MustFromSlice([]float64{3, 4}, 2).L2Norm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("L2Norm = %g, want 5", got)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := MustFromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Fatalf("MatMul = %v, want %v", c.Data(), want)
		}
	}
}

func TestMatMulShapeError(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	if _, err := MatMul(a, b); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
	if _, err := MatMul(New(2), b); !errors.Is(err, ErrShape) {
		t.Fatalf("rank-1 err = %v, want ErrShape", err)
	}
}

func TestMatMulTransVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(rng, 1, 4, 5)
	b := Randn(rng, 1, 5, 3)

	want, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}

	bT, err := Transpose2D(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MatMulTransB(a, bT)
	if err != nil {
		t.Fatal(err)
	}
	if !AllClose(want, got, 1e-12) {
		t.Fatal("MatMulTransB disagrees with MatMul")
	}

	aT, err := Transpose2D(a)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := MatMulTransA(aT, b)
	if err != nil {
		t.Fatal(err)
	}
	if !AllClose(want, got2, 1e-12) {
		t.Fatal("MatMulTransA disagrees with MatMul")
	}
}

func TestTranspose2D(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at, err := Transpose2D(a)
	if err != nil {
		t.Fatal(err)
	}
	if at.Dim(0) != 3 || at.Dim(1) != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("Transpose2D = %v", at.Data())
	}
}

func TestSoftmaxRows(t *testing.T) {
	x := MustFromSlice([]float64{1, 1, 1, 1000, 0, -1000}, 2, 3)
	p, err := SoftmaxRows(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		s := 0.0
		for j := 0; j < 3; j++ {
			s += p.At(i, j)
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("row %d sums to %g", i, s)
		}
	}
	if math.Abs(p.At(0, 0)-1.0/3) > 1e-9 {
		t.Fatalf("uniform row = %v", p.Row(0).Data())
	}
	if p.At(1, 0) < 0.999 {
		t.Fatalf("saturated row = %v", p.Row(1).Data())
	}
}

func TestEntropy(t *testing.T) {
	if h := Entropy([]float64{1, 0, 0}); h != 0 {
		t.Fatalf("deterministic entropy = %g", h)
	}
	h := Entropy([]float64{0.5, 0.5})
	if math.Abs(h-math.Ln2) > 1e-12 {
		t.Fatalf("fair-coin entropy = %g, want ln 2", h)
	}
}

func TestRowSetRow(t *testing.T) {
	x := New(3, 2)
	if err := x.SetRow(1, MustFromSlice([]float64{5, 6}, 2)); err != nil {
		t.Fatal(err)
	}
	r := x.Row(1)
	if r.At(0) != 5 || r.At(1) != 6 {
		t.Fatalf("Row = %v", r.Data())
	}
	if err := x.SetRow(0, New(3)); !errors.Is(err, ErrShape) {
		t.Fatalf("SetRow bad size err = %v", err)
	}
}

func TestCloneIsolation(t *testing.T) {
	a := MustFromSlice([]float64{1, 2}, 2)
	b := a.Clone()
	b.Set(9, 0)
	if a.At(0) != 1 {
		t.Fatal("Clone should not alias")
	}
}

func TestRandnDeterministic(t *testing.T) {
	a := Randn(rand.New(rand.NewSource(42)), 1, 10)
	b := Randn(rand.New(rand.NewSource(42)), 1, 10)
	if !AllClose(a, b, 0) {
		t.Fatal("same seed should give same tensor")
	}
}

// Property: softmax output rows always form a probability distribution.
func TestSoftmaxRowsProperty(t *testing.T) {
	f := func(vals [6]float64) bool {
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = 0
			}
			// Keep magnitudes sane; softmax is shift-invariant anyway.
			vals[i] = math.Mod(vals[i], 50)
		}
		x := MustFromSlice(vals[:], 2, 3)
		p, err := SoftmaxRows(x)
		if err != nil {
			return false
		}
		for i := 0; i < 2; i++ {
			s := 0.0
			for j := 0; j < 3; j++ {
				v := p.At(i, j)
				if v < 0 || v > 1 {
					return false
				}
				s += v
			}
			if math.Abs(s-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ for random small matrices.
func TestMatMulTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		m, k, n := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		ab, err := MatMul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		abT, err := Transpose2D(ab)
		if err != nil {
			t.Fatal(err)
		}
		bT, _ := Transpose2D(b)
		aT, _ := Transpose2D(a)
		bTaT, err := MatMul(bT, aT)
		if err != nil {
			t.Fatal(err)
		}
		if !AllClose(abT, bTaT, 1e-10) {
			t.Fatalf("trial %d: (AB)^T != B^T A^T", trial)
		}
	}
}
