package tsdb

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/telemetry"
)

// Alert rule comparison operators.
const (
	CmpGT = ">"
	CmpLT = "<"
)

// Rule states. A rule leaves Firing through a "resolved" transition that is
// logged but lands back in StateInactive — resolved is an edge, not a state.
const (
	StateInactive = "inactive"
	StatePending  = "pending"
	StateFiring   = "firing"
)

// Rule is one declarative alert: an expression evaluated every scrape tick
// plus at least one condition. A static threshold (Op non-empty) breaches
// when `value Op Threshold`; an anomaly detector (ZScore > 0) breaches when
// the value sits more than ZScore weighted standard deviations from its
// EWMA baseline. A rule with both breaches when either condition trips —
// unless AndConditions is set, in which case both must trip together (the
// shape for "anomalous AND above an absolute floor", which keeps tiny
// baseline wobbles from paging).
type Rule struct {
	Name     string `json:"name"`
	Expr     string `json:"expr"`
	Severity string `json:"severity"` // telemetry.LevelWarn or LevelError

	// Static threshold condition.
	Op        string  `json:"op,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`

	// EWMA z-score anomaly condition.
	ZScore float64 `json:"zscore,omitempty"`
	// Alpha is the EWMA decay in (0,1]; 0 means 0.3. Larger adapts faster.
	Alpha float64 `json:"alpha,omitempty"`
	// WarmupTicks is how many evaluations must seed the baseline before the
	// z-score may breach (0 means 5).
	WarmupTicks int `json:"warmupTicks,omitempty"`

	// AndConditions requires every configured condition to breach on the
	// same evaluation (ignored unless both Op and ZScore are set).
	AndConditions bool `json:"andConditions,omitempty"`

	// ForTicks is how many consecutive breaching evaluations beyond the
	// first are required before Pending escalates to Firing (0 fires on the
	// first breach).
	ForTicks int `json:"forTicks,omitempty"`

	// ExemplarFrom optionally names a histogram family whose worst-bucket
	// exemplar trace id is attached to this rule's firing event, so the
	// alert resolves to an inspectable trace.
	ExemplarFrom string `json:"exemplarFrom,omitempty"`
}

// RuleStatus is one rule's live evaluation state, as served by
// GET /api/alerting.
type RuleStatus struct {
	Rule         Rule    `json:"rule"`
	State        string  `json:"state"`
	SinceUnixNs  int64   `json:"sinceUnixNs"` // when the current state began
	BreachTicks  int     `json:"breachTicks"` // consecutive breaching evals
	LastValue    float64 `json:"lastValue"`
	LastEvalOK   bool    `json:"lastEvalOk"`
	LastError    string  `json:"lastError,omitempty"`
	EWMA         float64 `json:"ewma"`
	EWStd        float64 `json:"ewstd"`
	Evals        int64   `json:"evals"`
	Transitions  int64   `json:"transitions"`
	FiredCount   int64   `json:"firedCount"`
	LastExemplar string  `json:"lastExemplar,omitempty"`
}

// ruleState is the engine's mutable per-rule record.
type ruleState struct {
	rule  Rule
	state string
	since int64
	// EWMA baseline for the anomaly condition.
	mean, varEW float64
	warm        int
	// Streaks and accounting.
	breach      int
	lastValue   float64
	lastOK      bool
	lastErr     string
	evals       int64
	transitions int64
	fired       int64
	exemplar    string
}

// Engine evaluates alert rules against a Store every scrape tick and walks
// each rule through inactive → pending → firing → resolved transitions,
// logging every transition into the event log and exporting firing/pending
// gauges on the registry (cityinfra_tsdb_alerts_firing,
// cityinfra_tsdb_alerts_pending, and a per-rule state gauge).
type Engine struct {
	store  *Store
	events *telemetry.EventLog

	mu    sync.Mutex
	rules []*ruleState
}

// NewEngine builds an engine over the store, logging transitions into
// events (nil means transitions are not logged) and exporting its gauges on
// reg (nil means no gauges).
func NewEngine(store *Store, reg *telemetry.Registry, events *telemetry.EventLog) *Engine {
	e := &Engine{store: store, events: events}
	if reg != nil {
		reg.GaugeFunc("cityinfra_tsdb_alerts_firing", "alert rules currently firing",
			func() float64 { return float64(e.countState(StateFiring)) })
		reg.GaugeFunc("cityinfra_tsdb_alerts_pending", "alert rules currently pending",
			func() float64 { return float64(e.countState(StatePending)) })
	}
	return e
}

// AddRule registers one rule, normalizing defaults, and exports its state
// gauge (0=inactive, 1=pending, 2=firing) on reg when non-nil.
func (e *Engine) AddRule(r Rule, reg *telemetry.Registry) error {
	if r.Name == "" || r.Expr == "" {
		return fmt.Errorf("%w: rule needs a name and an expr", ErrBadExpr)
	}
	if r.Op == "" && r.ZScore <= 0 {
		return fmt.Errorf("%w: rule %s has no condition", ErrBadExpr, r.Name)
	}
	if r.Op != "" && r.Op != CmpGT && r.Op != CmpLT {
		return fmt.Errorf("%w: rule %s op %q", ErrBadExpr, r.Name, r.Op)
	}
	if _, err := parseExpr(r.Expr); err != nil {
		return fmt.Errorf("rule %s: %w", r.Name, err)
	}
	if r.Severity == "" {
		r.Severity = telemetry.LevelWarn
	}
	if r.Alpha <= 0 || r.Alpha > 1 {
		r.Alpha = 0.3
	}
	if r.WarmupTicks <= 0 {
		r.WarmupTicks = 5
	}
	st := &ruleState{rule: r, state: StateInactive, since: e.store.Now().UnixNano()}
	e.mu.Lock()
	e.rules = append(e.rules, st)
	e.mu.Unlock()
	if reg != nil {
		reg.GaugeFunc(telemetry.WithLabel("cityinfra_tsdb_alert_state", "rule", r.Name),
			"0=inactive, 1=pending, 2=firing", func() float64 {
				switch e.ruleStateOf(r.Name) {
				case StateFiring:
					return 2
				case StatePending:
					return 1
				default:
					return 0
				}
			})
	}
	return nil
}

func (e *Engine) countState(state string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, r := range e.rules {
		if r.state == state {
			n++
		}
	}
	return n
}

func (e *Engine) ruleStateOf(name string) string {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, r := range e.rules {
		if r.rule.Name == name {
			return r.state
		}
	}
	return StateInactive
}

// Eval evaluates every rule once at the store's current clock reading.
// Call it once per scrape tick, after Store.Scrape.
func (e *Engine) Eval() {
	at := e.store.Now()
	e.mu.Lock()
	rules := make([]*ruleState, len(e.rules))
	copy(rules, e.rules)
	e.mu.Unlock()
	for _, rs := range rules {
		v, err := e.store.Eval(rs.rule.Expr, at)
		e.mu.Lock()
		rs.evals++
		if err != nil {
			// Missing series or a window not yet filled is "no data", which
			// never breaches; the error is surfaced on /api/alerting.
			rs.lastOK, rs.lastErr = false, err.Error()
			e.step(rs, false, at.UnixNano())
			e.mu.Unlock()
			continue
		}
		rs.lastOK, rs.lastErr, rs.lastValue = true, "", v.Value
		breach := e.detect(rs, v.Value)
		e.step(rs, breach, at.UnixNano())
		e.mu.Unlock()
	}
}

// detect runs the rule's conditions against one value and updates the EWMA
// baseline. The z-score uses the pre-update baseline, so the breaching value
// does not defend itself by inflating the variance it is judged against.
func (e *Engine) detect(rs *ruleState, v float64) bool {
	r := rs.rule
	opBreach := (r.Op == CmpGT && v > r.Threshold) || (r.Op == CmpLT && v < r.Threshold)
	zBreach := false
	if r.ZScore > 0 {
		if rs.warm >= r.WarmupTicks {
			if std := math.Sqrt(rs.varEW); std > 0 && math.Abs(v-rs.mean)/std > r.ZScore {
				zBreach = true
			}
		}
		if rs.warm == 0 {
			rs.mean = v
		} else {
			diff := v - rs.mean
			incr := r.Alpha * diff
			rs.mean += incr
			rs.varEW = (1 - r.Alpha) * (rs.varEW + diff*incr)
		}
		rs.warm++
	}
	if r.AndConditions && r.Op != "" && r.ZScore > 0 {
		return opBreach && zBreach
	}
	return opBreach || zBreach
}

// step advances one rule's state machine by one evaluation (caller holds
// e.mu).
func (e *Engine) step(rs *ruleState, breach bool, atNs int64) {
	r := rs.rule
	if !breach {
		rs.breach = 0
		switch rs.state {
		case StateFiring:
			e.transition(rs, StateInactive, atNs)
			e.log(telemetry.LevelInfo, rs.exemplar,
				"alert %s resolved (value %.6g)", r.Name, rs.lastValue)
		case StatePending:
			e.transition(rs, StateInactive, atNs)
			e.log(telemetry.LevelInfo, "",
				"alert %s pending cleared (value %.6g)", r.Name, rs.lastValue)
		}
		return
	}
	rs.breach++
	switch rs.state {
	case StateInactive:
		if r.ForTicks <= 0 {
			e.fire(rs, atNs)
			return
		}
		e.transition(rs, StatePending, atNs)
		e.log(telemetry.LevelInfo, "",
			"alert %s pending: %s = %.6g", r.Name, r.Expr, rs.lastValue)
	case StatePending:
		// The first breach put the rule into pending, so ForTicks more
		// breaches means ForTicks+1 consecutive breaching evaluations.
		if rs.breach > r.ForTicks {
			e.fire(rs, atNs)
		}
	}
}

// fire transitions a rule into Firing, correlating the event with the
// configured histogram's freshest exemplar trace when one exists.
func (e *Engine) fire(rs *ruleState, atNs int64) {
	rs.exemplar = ""
	if rs.rule.ExemplarFrom != "" {
		rs.exemplar = e.store.ExemplarTrace(rs.rule.ExemplarFrom)
	}
	e.transition(rs, StateFiring, atNs)
	rs.fired++
	e.log(rs.rule.Severity, rs.exemplar,
		"alert %s firing: %s = %.6g", rs.rule.Name, rs.rule.Expr, rs.lastValue)
}

func (e *Engine) transition(rs *ruleState, to string, atNs int64) {
	rs.state = to
	rs.since = atNs
	rs.transitions++
}

func (e *Engine) log(level, traceID, format string, args ...any) {
	if e.events != nil {
		e.events.Log(level, telemetry.CompAlerts, traceID, format, args...)
	}
}

// States returns every rule's live status in registration order.
func (e *Engine) States() []RuleStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]RuleStatus, len(e.rules))
	for i, rs := range e.rules {
		out[i] = RuleStatus{
			Rule: rs.rule, State: rs.state, SinceUnixNs: rs.since,
			BreachTicks: rs.breach, LastValue: rs.lastValue,
			LastEvalOK: rs.lastOK, LastError: rs.lastErr,
			EWMA: rs.mean, EWStd: math.Sqrt(rs.varEW),
			Evals: rs.evals, Transitions: rs.transitions, FiredCount: rs.fired,
			LastExemplar: rs.exemplar,
		}
	}
	return out
}

// Firing returns the names of rules currently firing.
func (e *Engine) Firing() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for _, rs := range e.rules {
		if rs.state == StateFiring {
			out = append(out, rs.rule.Name)
		}
	}
	return out
}

// RuleRef is a light (name, state, severity, exemplar) view of one rule —
// what per-tick consumers need without the full RuleStatus export.
type RuleRef struct {
	Name     string
	State    string
	Severity string
	Exemplar string
}

// ActiveAppend appends a RuleRef for every rule whose state is not inactive
// (pending or firing) to buf and returns it. Passing a reused buf[:0] with
// enough capacity makes the call allocation-free — the incident engine polls
// this every monitor tick, where the common case is "nothing active".
func (e *Engine) ActiveAppend(buf []RuleRef) []RuleRef {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, rs := range e.rules {
		if rs.state == StatePending || rs.state == StateFiring {
			buf = append(buf, RuleRef{
				Name: rs.rule.Name, State: rs.state,
				Severity: rs.rule.Severity, Exemplar: rs.exemplar,
			})
		}
	}
	return buf
}
