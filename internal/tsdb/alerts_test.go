package tsdb

import (
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// alertFixture is a registry + store + engine on one manual clock, with a
// settable scraped value.
type alertFixture struct {
	reg    *telemetry.Registry
	store  *Store
	engine *Engine
	events *telemetry.EventLog
	clk    *manualNow
	value  float64
}

func newAlertFixture(t *testing.T, rule Rule) *alertFixture {
	t.Helper()
	f := &alertFixture{reg: telemetry.NewRegistry()}
	f.reg.GaugeFunc("signal", "test signal", func() float64 { return f.value })
	f.clk = newManualNow()
	f.store = NewStore(f.reg, Config{Capacity: 64, Now: f.clk.now})
	f.events = telemetry.NewEventLog(f.clk.now, 64)
	f.engine = NewEngine(f.store, f.reg, f.events)
	if err := f.engine.AddRule(rule, f.reg); err != nil {
		t.Fatal(err)
	}
	return f
}

// tick scrapes and evaluates once at the next 5 s boundary.
func (f *alertFixture) tick(v float64) {
	f.clk.advance(5 * time.Second)
	f.value = v
	f.store.Scrape()
	f.engine.Eval()
}

func (f *alertFixture) state() RuleStatus { return f.engine.States()[0] }

func TestThresholdRuleLifecycle(t *testing.T) {
	f := newAlertFixture(t, Rule{
		Name: "hot", Expr: "signal", Op: CmpGT, Threshold: 10,
		ForTicks: 1, Severity: telemetry.LevelError,
	})
	f.tick(3)
	if st := f.state(); st.State != StateInactive || !st.LastEvalOK {
		t.Fatalf("state = %+v", st)
	}
	f.tick(15)
	if st := f.state(); st.State != StatePending {
		t.Fatalf("after first breach state = %s", st.State)
	}
	f.tick(16)
	if st := f.state(); st.State != StateFiring || st.FiredCount != 1 {
		t.Fatalf("after second breach state = %+v", st)
	}
	// Firing count gauge.
	snap := snapshotMap(f.reg)
	if snap["cityinfra_tsdb_alerts_firing"] != 1 {
		t.Fatalf("firing gauge = %v", snap["cityinfra_tsdb_alerts_firing"])
	}
	if snap[`cityinfra_tsdb_alert_state{rule="hot"}`] != 2 {
		t.Fatalf("state gauge = %v", snap)
	}
	f.tick(2)
	if st := f.state(); st.State != StateInactive {
		t.Fatalf("after recovery state = %s", st.State)
	}
	if snapshotMap(f.reg)["cityinfra_tsdb_alerts_firing"] != 0 {
		t.Fatal("firing gauge did not reset")
	}
	// Event log carries pending → firing → resolved entries.
	var msgs []string
	for _, ev := range f.events.Events(0) {
		if ev.Component == "tsdb/alerts" {
			msgs = append(msgs, ev.Level+": "+ev.Message)
		}
	}
	joined := strings.Join(msgs, "\n")
	for _, want := range []string{"pending", "error: alert hot firing", "resolved"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("events missing %q:\n%s", want, joined)
		}
	}
}

func TestPendingClearsWithoutFiring(t *testing.T) {
	f := newAlertFixture(t, Rule{Name: "flap", Expr: "signal", Op: CmpGT, Threshold: 10, ForTicks: 2})
	f.tick(15)
	if f.state().State != StatePending {
		t.Fatalf("state = %s", f.state().State)
	}
	f.tick(1)
	if st := f.state(); st.State != StateInactive || st.FiredCount != 0 {
		t.Fatalf("state = %+v", st)
	}
	// A non-consecutive breach restarts the streak.
	f.tick(15)
	f.tick(1)
	f.tick(15)
	f.tick(15)
	if f.state().State != StatePending {
		t.Fatalf("streak did not restart: %+v", f.state())
	}
	f.tick(15)
	if f.state().State != StateFiring {
		t.Fatalf("state = %s", f.state().State)
	}
}

func TestZScoreAnomalyRule(t *testing.T) {
	f := newAlertFixture(t, Rule{
		Name: "anomaly", Expr: "signal", ZScore: 3, Alpha: 0.3, WarmupTicks: 6,
	})
	// A steady baseline with small wobble.
	wobble := []float64{10, 10.2, 9.8, 10.1, 9.9, 10, 10.1, 9.9, 10, 10.2}
	for _, v := range wobble {
		f.tick(v)
		if st := f.state(); st.State != StateInactive {
			t.Fatalf("baseline tripped the detector at %v: %+v", v, st)
		}
	}
	// A 10x spike is far beyond 3 weighted sigmas.
	f.tick(100)
	if st := f.state(); st.State != StateFiring {
		t.Fatalf("spike not detected: %+v", st)
	}
	// Returning to baseline resolves (the EWMA was dragged up by the spike,
	// but 10 is still within its widened band within a few ticks).
	for i := 0; i < 8 && f.state().State != StateInactive; i++ {
		f.tick(10)
	}
	if st := f.state(); st.State != StateInactive {
		t.Fatalf("anomaly did not resolve: %+v", st)
	}
}

func TestRuleWithMissingSeriesNeverBreaches(t *testing.T) {
	f := newAlertFixture(t, Rule{Name: "ghost", Expr: "rate(nope_total[30s])", Op: CmpGT, Threshold: 0})
	f.tick(1)
	st := f.state()
	if st.State != StateInactive || st.LastEvalOK || st.LastError == "" {
		t.Fatalf("state = %+v", st)
	}
}

func TestFiringEventCarriesExemplarTrace(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("lat_seconds", "lat", nil)
	clk := newManualNow()
	store := NewStore(reg, Config{Capacity: 16, Now: clk.now})
	events := telemetry.NewEventLog(clk.now, 16)
	engine := NewEngine(store, reg, events)
	err := engine.AddRule(Rule{
		Name: "slow", Expr: "lat_seconds_p99", Op: CmpGT, Threshold: 0.5,
		ExemplarFrom: "lat_seconds",
	}, reg)
	if err != nil {
		t.Fatal(err)
	}
	h.ObserveExemplar(2.0, "trace-slow")
	store.Scrape()
	engine.Eval()
	st := engine.States()[0]
	if st.State != StateFiring || st.LastExemplar != "trace-slow" {
		t.Fatalf("state = %+v", st)
	}
	found := false
	for _, ev := range events.Events(0) {
		if strings.Contains(ev.Message, "alert slow firing") && ev.TraceID == "trace-slow" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no trace-correlated firing event in %v", events.Events(0))
	}
}

func TestAddRuleValidation(t *testing.T) {
	f := newAlertFixture(t, Rule{Name: "ok", Expr: "signal", Op: CmpGT})
	for _, r := range []Rule{
		{Expr: "signal", Op: CmpGT},                  // no name
		{Name: "x"},                                  // no expr
		{Name: "x", Expr: "signal"},                  // no condition
		{Name: "x", Expr: "signal", Op: ">="},        // bad op
		{Name: "x", Expr: "rate(signal)", Op: CmpGT}, // bad expr
	} {
		if err := f.engine.AddRule(r, nil); err == nil {
			t.Fatalf("AddRule(%+v) accepted", r)
		}
	}
}

// snapshotMap flattens a registry snapshot into name -> value.
func snapshotMap(reg *telemetry.Registry) map[string]float64 {
	out := make(map[string]float64)
	for _, p := range reg.Snapshot() {
		out[p.Name] = p.Value
	}
	return out
}

// AndConditions gates firing on BOTH the z-score anomaly and the absolute
// floor: a statistically wild but tiny value stays quiet, a large but
// baseline-consistent value stays quiet, and only large-and-anomalous fires.
func TestAndConditionsRequiresBothBreaches(t *testing.T) {
	rule := Rule{
		Name: "both", Expr: "signal",
		Op: CmpGT, Threshold: 50,
		ZScore: 3, Alpha: 0.3, WarmupTicks: 4,
		AndConditions: true,
	}

	// Anomalous but under the floor: 10 is ~100 sigma off a 1±0.1 baseline,
	// and with OR semantics it would fire; AND keeps it quiet.
	f := newAlertFixture(t, rule)
	for _, v := range []float64{1, 1.1, 0.9, 1, 1.05, 0.95} {
		f.tick(v)
	}
	f.tick(10)
	if st := f.state(); st.State != StateInactive || st.FiredCount != 0 {
		t.Fatalf("anomalous-but-small value tripped AND rule: %+v", st)
	}

	// Above the floor but statistically normal: a 60±1 baseline breaches the
	// static side every tick, and the z-score side holds the rule back.
	f = newAlertFixture(t, rule)
	for i := 0; i < 12; i++ {
		f.tick(60 + float64(i%3)) // 60, 61, 62, ...
	}
	if st := f.state(); st.State != StateInactive || st.FiredCount != 0 {
		t.Fatalf("baseline-consistent value above floor tripped AND rule: %+v", st)
	}

	// Large AND anomalous fires.
	f.tick(500)
	if st := f.state(); st.State != StateFiring || st.FiredCount != 1 {
		t.Fatalf("large anomalous value did not fire: %+v", st)
	}
}
