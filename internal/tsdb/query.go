package tsdb

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Query functions over one windowed series. The grammar is a deliberately
// tiny PromQL subset — one series per expression, evaluated at one instant:
//
//	<series>                                    instant: latest scraped value
//	rate(<series>[<window>])                    per-second increase (counters)
//	delta(<series>[<window>])                   last - first in window
//	avg_over_time(<series>[<window>])           mean of samples in window
//	min_over_time(<series>[<window>])           minimum in window
//	max_over_time(<series>[<window>])           maximum in window
//	quantile_over_time(<q>, <series>[<window>]) q-quantile of samples
//
// Series names are exactly the scraped names, including any {label="value"}
// block and the _count/_sum/_p50/_p95/_p99 suffixes histograms fan out into.
// Windows use Go duration syntax (30s, 2m).

// Value is one evaluated expression.
type Value struct {
	Expr          string  `json:"expr"`
	Func          string  `json:"func"` // "" for an instant lookup
	Series        string  `json:"series"`
	WindowSeconds float64 `json:"windowSeconds"`
	AtUnixNs      int64   `json:"atUnixNs"`
	Samples       int     `json:"samples"` // samples the answer was computed from
	Value         float64 `json:"value"`
}

// query is one parsed expression.
type query struct {
	fn     string
	series string
	window time.Duration
	q      float64 // quantile_over_time only
}

// windowFuncs maps function name -> whether it takes a leading scalar.
var windowFuncs = map[string]bool{
	"rate":               false,
	"delta":              false,
	"avg_over_time":      false,
	"min_over_time":      false,
	"max_over_time":      false,
	"quantile_over_time": true,
}

// parseExpr parses the grammar above.
func parseExpr(expr string) (query, error) {
	s := strings.TrimSpace(expr)
	if s == "" {
		return query{}, fmt.Errorf("%w: empty expression", ErrBadExpr)
	}
	open := strings.IndexByte(s, '(')
	if open < 0 {
		// Instant lookup of a bare series.
		if strings.ContainsAny(s, "[]() ") {
			return query{}, fmt.Errorf("%w: %q", ErrBadExpr, expr)
		}
		return query{series: s}, nil
	}
	fn := strings.TrimSpace(s[:open])
	wantScalar, ok := windowFuncs[fn]
	if !ok {
		return query{}, fmt.Errorf("%w: unknown function %q", ErrBadExpr, fn)
	}
	if !strings.HasSuffix(s, ")") {
		return query{}, fmt.Errorf("%w: missing closing paren in %q", ErrBadExpr, expr)
	}
	args := s[open+1 : len(s)-1]
	out := query{fn: fn}
	if wantScalar {
		comma := strings.IndexByte(args, ',')
		if comma < 0 {
			return query{}, fmt.Errorf("%w: %s needs a quantile argument", ErrBadExpr, fn)
		}
		q, err := strconv.ParseFloat(strings.TrimSpace(args[:comma]), 64)
		if err != nil || q < 0 || q > 1 {
			return query{}, fmt.Errorf("%w: quantile %q must be in [0,1]", ErrBadExpr, args[:comma])
		}
		out.q = q
		args = args[comma+1:]
	}
	args = strings.TrimSpace(args)
	lb := strings.LastIndexByte(args, '[')
	if lb < 0 || !strings.HasSuffix(args, "]") {
		return query{}, fmt.Errorf("%w: %s needs a [window] selector", ErrBadExpr, fn)
	}
	win, err := time.ParseDuration(strings.TrimSpace(args[lb+1 : len(args)-1]))
	if err != nil || win <= 0 {
		return query{}, fmt.Errorf("%w: bad window in %q", ErrBadExpr, expr)
	}
	out.series = strings.TrimSpace(args[:lb])
	out.window = win
	if out.series == "" {
		return query{}, fmt.Errorf("%w: missing series in %q", ErrBadExpr, expr)
	}
	return out, nil
}

// Eval parses and evaluates one expression at the given instant (the window
// is [at-window, at], boundaries inclusive).
func (st *Store) Eval(expr string, at time.Time) (Value, error) {
	sp := st.profRegion(true).Start()
	defer sp.End()
	q, err := parseExpr(expr)
	if err != nil {
		return Value{}, err
	}
	out := Value{Expr: expr, Func: q.fn, Series: q.series, AtUnixNs: at.UnixNano()}
	if q.fn == "" {
		sm, err := st.Latest(q.series)
		if err != nil {
			return Value{}, err
		}
		out.Samples = 1
		out.Value = sm.Value
		return out, nil
	}
	out.WindowSeconds = q.window.Seconds()
	samples, err := st.Samples(q.series, at.Add(-q.window), at)
	if err != nil {
		return Value{}, err
	}
	out.Samples = len(samples)
	min2 := 2
	if strings.HasSuffix(q.fn, "_over_time") {
		min2 = 1
	}
	if len(samples) < min2 {
		return Value{}, fmt.Errorf("%w: %s over %s has %d", ErrNoSamples, q.series, q.window, len(samples))
	}
	switch q.fn {
	case "rate":
		out.Value = rate(samples)
	case "delta":
		out.Value = samples[len(samples)-1].Value - samples[0].Value
	case "avg_over_time":
		var sum float64
		for _, s := range samples {
			sum += s.Value
		}
		out.Value = sum / float64(len(samples))
	case "min_over_time":
		out.Value = math.Inf(1)
		for _, s := range samples {
			out.Value = math.Min(out.Value, s.Value)
		}
	case "max_over_time":
		out.Value = math.Inf(-1)
		for _, s := range samples {
			out.Value = math.Max(out.Value, s.Value)
		}
	case "quantile_over_time":
		out.Value = quantile(samples, q.q)
	}
	return out, nil
}

// rate is the per-second increase across the window's samples: the sum of
// positive adjacent deltas (negative deltas are counter resets and restart
// the accumulation from the post-reset value, like PromQL) divided by the
// observed sample span. With an exact sample at each window edge this equals
// (last-first)/(t_last-t_first) for a monotonic counter.
func rate(samples []Sample) float64 {
	var inc float64
	for i := 1; i < len(samples); i++ {
		d := samples[i].Value - samples[i-1].Value
		if d > 0 {
			inc += d
		} else if d < 0 { // reset: the whole post-reset value is new increase
			inc += samples[i].Value
		}
	}
	span := float64(samples[len(samples)-1].TimeUnixNs-samples[0].TimeUnixNs) / 1e9
	if span <= 0 {
		return 0
	}
	return inc / span
}

// quantile returns the q-quantile of the sample values by linear
// interpolation between order statistics.
func quantile(samples []Sample, q float64) float64 {
	vals := make([]float64, len(samples))
	for i, s := range samples {
		vals[i] = s.Value
	}
	sort.Float64s(vals)
	if len(vals) == 1 {
		return vals[0]
	}
	rank := q * float64(len(vals)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return vals[lo]
	}
	frac := rank - float64(lo)
	return vals[lo] + (vals[hi]-vals[lo])*frac
}
