package tsdb

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// Query functions over windowed series. The grammar is a deliberately tiny
// PromQL subset, evaluated at one instant:
//
//	<sel>                                    instant: latest scraped value
//	rate(<sel>[<window>])                    per-second increase (counters)
//	delta(<sel>[<window>])                   last - first in window
//	avg_over_time(<sel>[<window>])           mean of samples in window
//	min_over_time(<sel>[<window>])           minimum in window
//	max_over_time(<sel>[<window>])           maximum in window
//	quantile_over_time(<q>, <sel>[<window>]) q-quantile of samples
//	<agg>(<expr>)                            sum/avg/min/max over all matches
//	<agg> by (<label>) (<expr>)              grouped aggregation
//
// A selector <sel> is a series name with an optional label-matcher block:
// `name` or `name{camera="cam-7"}`. A bare name prefers the exact label-less
// series when one exists (so the pre-dimensional rules keep their meaning)
// and otherwise matches every series of that family — which is what the
// aggregations fold: `sum by (camera) (rate(name[30s]))` yields one value
// per camera. Matcher labels are an equality subset: every listed label must
// match, extra series labels are fine. Windows use Go duration syntax
// (30s, 2m); histogram fan-out suffixes (_count, _p99, ...) are part of the
// family name.

// Value is one evaluated expression (or one aggregation group).
type Value struct {
	Expr          string            `json:"expr"`
	Func          string            `json:"func"` // "" for an instant lookup
	Series        string            `json:"series"`
	Labels        map[string]string `json:"labels,omitempty"` // aggregation group key
	WindowSeconds float64           `json:"windowSeconds"`
	AtUnixNs      int64             `json:"atUnixNs"`
	Samples       int               `json:"samples"` // samples the answer was computed from
	Value         float64           `json:"value"`
}

// query is one parsed expression.
type query struct {
	agg    string // "", "sum", "avg", "min", "max"
	by     string // grouping label; "" folds every match into one value
	fn     string
	series string // selector text (possibly with a label-matcher block)
	window time.Duration
	q      float64 // quantile_over_time only
}

// windowFuncs maps function name -> whether it takes a leading scalar.
var windowFuncs = map[string]bool{
	"rate":               false,
	"delta":              false,
	"avg_over_time":      false,
	"min_over_time":      false,
	"max_over_time":      false,
	"quantile_over_time": true,
}

// aggOps are the vector-folding operators.
var aggOps = map[string]bool{"sum": true, "avg": true, "min": true, "max": true}

// validSelector checks a selector's shape at parse time so malformed
// matchers (unclosed brace, bad escape, empty matcher) fail with ErrBadExpr
// instead of a spurious unknown-series miss.
func validSelector(sel string) error {
	if sel == "" {
		return fmt.Errorf("%w: empty series selector", ErrBadExpr)
	}
	family, _, err := telemetry.ParseName(sel)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadExpr, err)
	}
	if family == "" || strings.ContainsAny(family, "[]() {}") {
		return fmt.Errorf("%w: bad series name in %q", ErrBadExpr, sel)
	}
	return nil
}

// parseExpr parses the grammar above.
func parseExpr(expr string) (query, error) {
	s := strings.TrimSpace(expr)
	if s == "" {
		return query{}, fmt.Errorf("%w: empty expression", ErrBadExpr)
	}
	out, rest, err := parseAggHead(s)
	if err != nil {
		return query{}, err
	}
	if out.agg != "" {
		if !strings.HasPrefix(rest, "(") || !strings.HasSuffix(rest, ")") {
			return query{}, fmt.Errorf("%w: %s needs a parenthesized expression in %q", ErrBadExpr, out.agg, expr)
		}
		inner, err := parseInner(strings.TrimSpace(rest[1 : len(rest)-1]))
		if err != nil {
			return query{}, err
		}
		inner.agg, inner.by = out.agg, out.by
		return inner, nil
	}
	return parseInner(s)
}

// parseAggHead recognizes an optional leading `agg` or `agg by (label)` and
// returns the remainder. A name like avg_over_time is not an aggregation.
func parseAggHead(s string) (query, string, error) {
	var out query
	for op := range aggOps {
		if !strings.HasPrefix(s, op) {
			continue
		}
		rest := s[len(op):]
		if rest == "" || (rest[0] != '(' && rest[0] != ' ' && rest[0] != '\t') {
			continue // e.g. avg_over_time
		}
		rest = strings.TrimSpace(rest)
		if strings.HasPrefix(rest, "by") {
			after := strings.TrimSpace(rest[2:])
			if !strings.HasPrefix(after, "(") {
				return query{}, "", fmt.Errorf("%w: %s by needs a (label) group in %q", ErrBadExpr, op, s)
			}
			close := strings.IndexByte(after, ')')
			if close < 0 {
				return query{}, "", fmt.Errorf("%w: unclosed by-clause in %q", ErrBadExpr, s)
			}
			label := strings.TrimSpace(after[1:close])
			if label == "" || strings.ContainsAny(label, ", ") {
				return query{}, "", fmt.Errorf("%w: by-clause wants exactly one label in %q", ErrBadExpr, s)
			}
			out.by = label
			rest = strings.TrimSpace(after[close+1:])
		}
		if !strings.HasPrefix(rest, "(") {
			continue // `summary_series` style names that merely start with an op
		}
		out.agg = op
		return out, rest, nil
	}
	return out, s, nil
}

// parseInner parses the non-aggregated core: a selector or fn(sel[window]).
func parseInner(s string) (query, error) {
	if s == "" {
		return query{}, fmt.Errorf("%w: empty expression", ErrBadExpr)
	}
	open := strings.IndexByte(s, '(')
	brace := strings.IndexByte(s, '{')
	if open < 0 || (brace >= 0 && brace < open) {
		// Instant lookup of a bare selector.
		if strings.ContainsAny(s, "[]() ") && brace < 0 {
			return query{}, fmt.Errorf("%w: %q", ErrBadExpr, s)
		}
		if err := validSelector(s); err != nil {
			return query{}, err
		}
		return query{series: s}, nil
	}
	fn := strings.TrimSpace(s[:open])
	wantScalar, ok := windowFuncs[fn]
	if !ok {
		return query{}, fmt.Errorf("%w: unknown function %q", ErrBadExpr, fn)
	}
	if !strings.HasSuffix(s, ")") {
		return query{}, fmt.Errorf("%w: missing closing paren in %q", ErrBadExpr, s)
	}
	args := s[open+1 : len(s)-1]
	out := query{fn: fn}
	if wantScalar {
		comma := strings.IndexByte(args, ',')
		if comma < 0 {
			return query{}, fmt.Errorf("%w: %s needs a quantile argument", ErrBadExpr, fn)
		}
		q, err := strconv.ParseFloat(strings.TrimSpace(args[:comma]), 64)
		if err != nil || q < 0 || q > 1 {
			return query{}, fmt.Errorf("%w: quantile %q must be in [0,1]", ErrBadExpr, args[:comma])
		}
		out.q = q
		args = args[comma+1:]
	}
	args = strings.TrimSpace(args)
	lb := strings.LastIndexByte(args, '[')
	if lb < 0 || !strings.HasSuffix(args, "]") {
		return query{}, fmt.Errorf("%w: %s needs a [window] selector", ErrBadExpr, fn)
	}
	win, err := time.ParseDuration(strings.TrimSpace(args[lb+1 : len(args)-1]))
	if err != nil || win <= 0 {
		return query{}, fmt.Errorf("%w: bad window in %q", ErrBadExpr, s)
	}
	out.series = strings.TrimSpace(args[:lb])
	out.window = win
	if err := validSelector(out.series); err != nil {
		return query{}, err
	}
	return out, nil
}

// matchSeries resolves a selector to retained series names, sorted. A bare
// name prefers its exact series; otherwise the selector's family + label
// subset is matched against every series.
func (st *Store) matchSeries(sel string) ([]string, error) {
	family, labels, err := telemetry.ParseName(sel)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadExpr, err)
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	if len(labels) == 0 {
		if _, ok := st.series[sel]; ok {
			return []string{sel}, nil
		}
	}
	var out []string
	for name, s := range st.series {
		if s.family != family {
			continue
		}
		if !labelsMatch(labels, s.labels) {
			continue
		}
		out = append(out, name)
	}
	if len(out) == 0 {
		return nil, ErrUnknownSeries
	}
	sort.Strings(out)
	return out, nil
}

// labelsMatch reports whether every matcher label equals the series label.
func labelsMatch(matchers, have telemetry.LabelSet) bool {
	for _, m := range matchers {
		if have.Get(m.Key) != m.Value {
			return false
		}
	}
	return true
}

// Eval parses and evaluates one expression at the given instant (the window
// is [at-window, at], boundaries inclusive) and requires it to resolve to a
// single value: one matched series, or an aggregation folding its matches
// into one group. This is what alert rules and controller signals call.
func (st *Store) Eval(expr string, at time.Time) (Value, error) {
	vals, err := st.EvalAll(expr, at)
	if err != nil {
		return Value{}, err
	}
	if len(vals) != 1 {
		return Value{}, fmt.Errorf("%w: %q matches %d series; fold them with sum/avg/min/max (optionally by (label))",
			ErrBadExpr, expr, len(vals))
	}
	return vals[0], nil
}

// EvalAll parses and evaluates one expression at the given instant,
// returning one Value per matched series — or, for aggregations, one Value
// per group. Series without enough samples in the window are skipped when
// the selector matches several (young, just-promoted series shouldn't hide
// the rest of the fleet); if nothing is evaluable the error reports why.
func (st *Store) EvalAll(expr string, at time.Time) ([]Value, error) {
	sp := st.profRegion(true).Start()
	defer sp.End()
	q, err := parseExpr(expr)
	if err != nil {
		return nil, err
	}
	names, err := st.matchSeries(q.series)
	if err != nil {
		return nil, err
	}
	vals := make([]Value, 0, len(names))
	var lastErr error
	for _, name := range names {
		v, err := st.evalOne(q, name, expr, at)
		if err != nil {
			if (errors.Is(err, ErrNoSamples) || errors.Is(err, ErrUnknownSeries)) && len(names) > 1 {
				lastErr = err
				continue
			}
			return nil, err
		}
		vals = append(vals, v)
	}
	if len(vals) == 0 {
		if lastErr == nil {
			lastErr = ErrNoSamples
		}
		return nil, lastErr
	}
	if q.agg == "" {
		return vals, nil
	}
	return aggregate(q, expr, vals, at)
}

// evalOne evaluates the parsed query against one concrete series.
func (st *Store) evalOne(q query, name, expr string, at time.Time) (Value, error) {
	out := Value{Expr: expr, Func: q.fn, Series: name, AtUnixNs: at.UnixNano()}
	if strings.IndexByte(name, '{') >= 0 {
		if _, ls, err := telemetry.ParseName(name); err == nil && len(ls) > 0 {
			out.Labels = make(map[string]string, len(ls))
			for _, l := range ls {
				out.Labels[l.Key] = l.Value
			}
		}
	}
	if q.fn == "" {
		sm, err := st.Latest(name)
		if err != nil {
			return Value{}, err
		}
		out.Samples = 1
		out.Value = sm.Value
		return out, nil
	}
	out.WindowSeconds = q.window.Seconds()
	samples, err := st.Samples(name, at.Add(-q.window), at)
	if err != nil {
		return Value{}, err
	}
	out.Samples = len(samples)
	min2 := 2
	if strings.HasSuffix(q.fn, "_over_time") {
		min2 = 1
	}
	if len(samples) < min2 {
		return Value{}, fmt.Errorf("%w: %s over %s has %d", ErrNoSamples, name, q.window, len(samples))
	}
	switch q.fn {
	case "rate":
		out.Value = rate(samples)
	case "delta":
		out.Value = samples[len(samples)-1].Value - samples[0].Value
	case "avg_over_time":
		var sum float64
		for _, s := range samples {
			sum += s.Value
		}
		out.Value = sum / float64(len(samples))
	case "min_over_time":
		out.Value = math.Inf(1)
		for _, s := range samples {
			out.Value = math.Min(out.Value, s.Value)
		}
	case "max_over_time":
		out.Value = math.Inf(-1)
		for _, s := range samples {
			out.Value = math.Max(out.Value, s.Value)
		}
	case "quantile_over_time":
		out.Value = quantile(samples, q.q)
	}
	return out, nil
}

// aggregate folds per-series values into per-group results, keyed by the
// by-label's value ("" when no by-clause: everything folds into one group).
func aggregate(q query, expr string, vals []Value, at time.Time) ([]Value, error) {
	type group struct {
		n       int
		sum     float64
		min     float64
		max     float64
		samples int
	}
	groups := map[string]*group{}
	var keys []string
	// vals arrive sorted by series name, so group keys are discovered in a
	// deterministic order.
	for _, v := range vals {
		key := ""
		if q.by != "" {
			key = v.groupLabel(q.by)
		}
		g, ok := groups[key]
		if !ok {
			g = &group{min: math.Inf(1), max: math.Inf(-1)}
			groups[key] = g
			keys = append(keys, key)
		}
		g.n++
		g.sum += v.Value
		g.min = math.Min(g.min, v.Value)
		g.max = math.Max(g.max, v.Value)
		g.samples += v.Samples
	}
	sort.Strings(keys)
	fnName := q.agg
	if q.fn != "" {
		fnName = q.agg + " " + q.fn
	}
	out := make([]Value, 0, len(groups))
	for _, key := range keys {
		g := groups[key]
		v := Value{
			Expr: expr, Func: fnName, Series: q.series,
			WindowSeconds: q.window.Seconds(), AtUnixNs: at.UnixNano(),
			Samples: g.samples,
		}
		if q.by != "" {
			v.Labels = map[string]string{q.by: key}
		}
		switch q.agg {
		case "sum":
			v.Value = g.sum
		case "avg":
			v.Value = g.sum / float64(g.n)
		case "min":
			v.Value = g.min
		case "max":
			v.Value = g.max
		}
		out = append(out, v)
	}
	return out, nil
}

// groupLabel extracts the by-label's value from the Value's concrete series
// name (parsed lazily; series names came from the store, so they parse).
func (v Value) groupLabel(label string) string {
	_, labels, err := telemetry.ParseName(v.Series)
	if err != nil {
		return ""
	}
	return labels.Get(label)
}

// rate is the per-second increase across the window's samples: the sum of
// positive adjacent deltas (negative deltas are counter resets and restart
// the accumulation from the post-reset value, like PromQL) divided by the
// observed sample span. With an exact sample at each window edge this equals
// (last-first)/(t_last-t_first) for a monotonic counter.
func rate(samples []Sample) float64 {
	var inc float64
	for i := 1; i < len(samples); i++ {
		d := samples[i].Value - samples[i-1].Value
		if d > 0 {
			inc += d
		} else if d < 0 { // reset: the whole post-reset value is new increase
			inc += samples[i].Value
		}
	}
	span := float64(samples[len(samples)-1].TimeUnixNs-samples[0].TimeUnixNs) / 1e9
	if span <= 0 {
		return 0
	}
	return inc / span
}

// quantile returns the q-quantile of the sample values by linear
// interpolation between order statistics.
func quantile(samples []Sample, q float64) float64 {
	vals := make([]float64, len(samples))
	for i, s := range samples {
		vals[i] = s.Value
	}
	sort.Float64s(vals)
	if len(vals) == 1 {
		return vals[0]
	}
	rank := q * float64(len(vals)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return vals[lo]
	}
	frac := rank - float64(lo)
	return vals[lo] + (vals[hi]-vals[lo])*frac
}
