package tsdb

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// seedCounter scrapes a counter through the given cumulative values, one
// scrape per step seconds.
func seedCounter(t *testing.T, values []float64, step time.Duration) (*Store, *manualNow) {
	t.Helper()
	reg := telemetry.NewRegistry()
	var last float64
	cur := &last
	reg.CounterFunc("c_total", "c", func() float64 { return *cur })
	st, clk := newTestStore(reg, 64)
	for i, v := range values {
		last = v
		st.Scrape()
		if i < len(values)-1 {
			clk.advance(step)
		}
	}
	return st, clk
}

func TestParseExprErrors(t *testing.T) {
	for _, expr := range []string{
		"", "rate(x)", "rate(x[)", "rate(x[0s])", "rate(x[-5s])", "nope(x[5s])",
		"quantile_over_time(x[5s])", "quantile_over_time(1.5, x[5s])",
		"rate(x[5s]", "bad name", "rate([5s])",
	} {
		if _, err := parseExpr(expr); !errors.Is(err, ErrBadExpr) {
			t.Fatalf("parseExpr(%q) err = %v, want ErrBadExpr", expr, err)
		}
	}
	q, err := parseExpr(" quantile_over_time( 0.9 , lat_p99[90s] ) ")
	if err != nil {
		t.Fatal(err)
	}
	if q.fn != "quantile_over_time" || q.series != "lat_p99" || q.window != 90*time.Second || q.q != 0.9 {
		t.Fatalf("parsed = %+v", q)
	}
	q, err = parseExpr(`rate(wal_total{table="crimes"}[2m])`)
	if err != nil {
		t.Fatal(err)
	}
	if q.series != `wal_total{table="crimes"}` || q.window != 2*time.Minute {
		t.Fatalf("parsed = %+v", q)
	}
}

func TestRateAndDelta(t *testing.T) {
	st, clk := seedCounter(t, []float64{0, 10, 30, 60}, 10*time.Second)
	v, err := st.Eval("rate(c_total[30s])", clk.t)
	if err != nil {
		t.Fatal(err)
	}
	// 60 increase over 30 s of sample span.
	if math.Abs(v.Value-2.0) > 1e-12 || v.Samples != 4 {
		t.Fatalf("rate = %+v", v)
	}
	d, err := st.Eval("delta(c_total[20s])", clk.t)
	if err != nil {
		t.Fatal(err)
	}
	if d.Value != 50 || d.Samples != 3 {
		t.Fatalf("delta = %+v", d)
	}
}

func TestRateHandlesCounterReset(t *testing.T) {
	st, clk := seedCounter(t, []float64{100, 120, 5, 25}, 10*time.Second)
	v, err := st.Eval("rate(c_total[30s])", clk.t)
	if err != nil {
		t.Fatal(err)
	}
	// Increases: 20, then a reset contributes the post-reset 5, then 20.
	want := 45.0 / 30.0
	if math.Abs(v.Value-want) > 1e-12 {
		t.Fatalf("rate with reset = %v, want %v", v.Value, want)
	}
}

func TestOverTimeFunctions(t *testing.T) {
	reg := telemetry.NewRegistry()
	g := reg.Gauge("v", "v")
	st, clk := newTestStore(reg, 64)
	for _, x := range []float64{4, 1, 9, 6} {
		g.Set(x)
		st.Scrape()
		clk.advance(time.Second)
	}
	at := clk.t
	for expr, want := range map[string]float64{
		"avg_over_time(v[10s])":           5,
		"min_over_time(v[10s])":           1,
		"max_over_time(v[10s])":           9,
		"quantile_over_time(0.5, v[10s])": 5, // median of 1,4,6,9
		"quantile_over_time(1, v[10s])":   9,
		"quantile_over_time(0, v[10s])":   1,
	} {
		v, err := st.Eval(expr, at)
		if err != nil {
			t.Fatalf("%s: %v", expr, err)
		}
		if math.Abs(v.Value-want) > 1e-12 {
			t.Fatalf("%s = %v, want %v", expr, v.Value, want)
		}
	}
	// Instant lookup.
	v, err := st.Eval("v", at)
	if err != nil || v.Value != 6 || v.Func != "" {
		t.Fatalf("instant = %+v, %v", v, err)
	}
}

func TestEvalErrorTaxonomy(t *testing.T) {
	st, clk := seedCounter(t, []float64{1}, time.Second)
	if _, err := st.Eval("rate(missing[10s])", clk.t); !errors.Is(err, ErrUnknownSeries) {
		t.Fatalf("err = %v", err)
	}
	// One sample is not enough for a rate.
	if _, err := st.Eval("rate(c_total[10s])", clk.t); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("err = %v", err)
	}
	// ...but is enough for an over_time aggregate.
	if _, err := st.Eval("avg_over_time(c_total[10s])", clk.t); err != nil {
		t.Fatalf("err = %v", err)
	}
	// A window in the past with no samples.
	if _, err := st.Eval("avg_over_time(c_total[1s])", clk.t.Add(time.Hour)); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("err = %v", err)
	}
	if _, err := st.Eval("rate(c_total[junk])", clk.t); !errors.Is(err, ErrBadExpr) {
		t.Fatalf("err = %v", err)
	}
}
