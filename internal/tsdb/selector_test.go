package tsdb

import (
	"errors"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// fleetStore builds a store over a small labeled fleet: three per-camera
// counters plus the rollup, scraped twice so rate() has a window.
func fleetStore(t *testing.T) (*Store, *manualNow) {
	t.Helper()
	reg := telemetry.NewRegistry()
	vec := reg.CounterVec("frames_total", "frames per camera", "camera", 8)
	cams := []string{"cam-1", "cam-2", "cam-3"}
	handles := make([]*telemetry.LabeledCounter, len(cams))
	for i, id := range cams {
		handles[i] = vec.With(id)
	}
	st, clk := newTestStore(reg, 16)
	for tick := 1; tick <= 3; tick++ {
		for i, h := range handles {
			h.Add((i + 1) * tick)
		}
		clk.advance(5 * time.Second)
		st.Scrape()
	}
	return st, clk
}

func TestSelectorExactAndFamilyMatch(t *testing.T) {
	st, _ := fleetStore(t)

	// Labeled selector resolves to exactly that camera's series.
	v, err := st.Eval(`frames_total{camera="cam-2"}`, st.Now())
	if err != nil {
		t.Fatalf("labeled instant: %v", err)
	}
	if v.Value != 2+4+6 {
		t.Fatalf("cam-2 instant = %g, want 12", v.Value)
	}
	if v.Labels["camera"] != "cam-2" {
		t.Fatalf("labels = %v", v.Labels)
	}

	// A bare family name fans out to every child (plus rollup) via EvalAll.
	vals, err := st.EvalAll("frames_total", st.Now())
	if err != nil {
		t.Fatalf("family EvalAll: %v", err)
	}
	if len(vals) != 4 { // 3 cameras + ~other rollup
		t.Fatalf("family matched %d series, want 4", len(vals))
	}

	// The single-value Eval refuses the ambiguous match with a bad-expr
	// error that tells the caller to aggregate.
	if _, err := st.Eval("frames_total", st.Now()); !errors.Is(err, ErrBadExpr) {
		t.Fatalf("ambiguous Eval error = %v, want ErrBadExpr", err)
	}

	// Unknown camera is an unknown-series miss, not a parse error.
	if _, err := st.Eval(`frames_total{camera="cam-9"}`, st.Now()); !errors.Is(err, ErrUnknownSeries) {
		t.Fatalf("unknown camera error = %v, want ErrUnknownSeries", err)
	}
}

func TestAggregationSumBy(t *testing.T) {
	st, _ := fleetStore(t)

	// sum(...) folds the whole family into one scalar.
	v, err := st.Eval("sum(frames_total)", st.Now())
	if err != nil {
		t.Fatalf("sum: %v", err)
	}
	want := (1 + 2 + 3) + (2 + 4 + 6) + (3 + 6 + 9) // cams 1..3 over 3 ticks
	if v.Value != float64(want) {
		t.Fatalf("sum = %g, want %d", v.Value, want)
	}

	// sum by (camera) yields one group per camera, sorted by label value.
	vals, err := st.EvalAll("sum by (camera) (frames_total)", st.Now())
	if err != nil {
		t.Fatalf("sum by: %v", err)
	}
	if len(vals) != 4 {
		t.Fatalf("sum by groups = %d, want 4", len(vals))
	}
	if vals[0].Labels["camera"] != "cam-1" || vals[0].Value != 6 {
		t.Fatalf("group[0] = %+v", vals[0])
	}
	if vals[3].Labels["camera"] != telemetry.RollupValue {
		t.Fatalf("group[3] = %+v, want the rollup group last", vals[3])
	}

	// max(rate(...)) — the fleet-alert shape — picks the busiest camera.
	mv, err := st.Eval("max(rate(frames_total[15s]))", st.Now())
	if err != nil {
		t.Fatalf("max rate: %v", err)
	}
	// cam-3 added 6 then 9 over the last two 5s intervals: (6+9)/10s = 1.5/s.
	if mv.Value != 1.5 {
		t.Fatalf("max rate = %g, want 1.5", mv.Value)
	}
	if mv.Func != "max rate" {
		t.Fatalf("func = %q", mv.Func)
	}
}

func TestAggregationSkipsYoungSeries(t *testing.T) {
	reg := telemetry.NewRegistry()
	vec := reg.CounterVec("v_total", "v", "camera", 8)
	old := vec.With("cam-old")
	st, clk := newTestStore(reg, 16)
	old.Add(1)
	clk.advance(5 * time.Second)
	st.Scrape()
	old.Add(1)
	// A camera whose series appears on the last scrape has one sample:
	// rate() needs two, so the fleet aggregate must skip it, not error.
	vec.With("cam-new").Add(100)
	clk.advance(5 * time.Second)
	st.Scrape()
	v, err := st.Eval("max(rate(v_total[15s]))", st.Now())
	if err != nil {
		t.Fatalf("max rate with young series: %v", err)
	}
	if v.Value <= 0 {
		t.Fatalf("max rate = %g, want > 0", v.Value)
	}
}

func TestMalformedSelectorsAreBadExpr(t *testing.T) {
	st, _ := fleetStore(t)
	cases := []string{
		`frames_total{camera="cam-1"`,        // unclosed brace
		`frames_total{}`,                     // empty matcher
		`frames_total{camera=}`,              // unquoted value
		`frames_total{camera="a\q"}`,         // bad escape
		`rate(frames_total{camera="x"[15s])`, // unclosed brace inside fn
		`sum by () (frames_total)`,           // empty by-clause
		`sum by (a, b) (frames_total)`,       // multi-label by
		`sum by (camera frames_total)`,       // unclosed by / missing body
		`avg()`,                              // empty aggregation body
	}
	for _, expr := range cases {
		if _, err := st.Eval(expr, st.Now()); !errors.Is(err, ErrBadExpr) {
			t.Errorf("Eval(%q) error = %v, want ErrBadExpr", expr, err)
		}
	}
}

func TestAggHeadDoesNotShadowOverTimeFuncs(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Gauge("avg_queue", "g").Set(4)
	g := reg.Gauge("depth", "g")
	st, clk := newTestStore(reg, 16)
	g.Set(2)
	st.Scrape()
	clk.advance(5 * time.Second)
	g.Set(6)
	st.Scrape()
	// avg_over_time must parse as the window function, not as `avg` + junk.
	v, err := st.Eval("avg_over_time(depth[15s])", st.Now())
	if err != nil {
		t.Fatalf("avg_over_time: %v", err)
	}
	if v.Value != 4 {
		t.Fatalf("avg_over_time = %g, want 4", v.Value)
	}
	// And a series merely named like an op still resolves as a series.
	if _, err := st.Eval("avg_queue", st.Now()); err != nil {
		t.Fatalf("avg_queue instant: %v", err)
	}
}
