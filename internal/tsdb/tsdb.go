// Package tsdb is an embedded, dependency-free metrics time-series store:
// it periodically scrapes a telemetry.Registry into fixed-capacity
// ring-buffer series and answers windowed queries over the retained history
// — rate(), delta(), avg/min/max_over_time(), quantile_over_time() — so the
// dashboard tier can ask "what was the ingest rate over the last minute"
// instead of only "what is the counter now". An alert engine (alerts.go)
// evaluates declarative rules over the same query layer each scrape tick.
//
// Everything runs on an injected clock, so experiments and tests drive
// scrape ticks deterministically on the simulated clock without sleeping;
// production deployments pass time.Now and a real ticker.
package tsdb

import (
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/profile"
	"repro/internal/telemetry"
)

// Sentinel errors.
var (
	ErrUnknownSeries = errors.New("tsdb: unknown series")
	ErrBadExpr       = errors.New("tsdb: bad query expression")
	ErrNoSamples     = errors.New("tsdb: not enough samples in window")
)

// Sample is one scraped observation of a series.
type Sample struct {
	TimeUnixNs int64   `json:"timeUnixNs"`
	Value      float64 `json:"value"`
}

// series is one metric's ring-buffer history. The family and parsed label
// set are computed once at creation so label-selector queries never re-parse
// names on the read path.
type series struct {
	kind   string // "counter" or "gauge"
	family string
	labels telemetry.LabelSet
	buf    []Sample
	next   int
	full   bool
}

func (s *series) append(sm Sample) {
	s.buf[s.next] = sm
	s.next++
	if s.next == len(s.buf) {
		s.next = 0
		s.full = true
	}
}

// snapshot returns retained samples in chronological order.
func (s *series) snapshot() []Sample {
	n := s.next
	if s.full {
		n = len(s.buf)
	}
	out := make([]Sample, 0, n)
	start := 0
	if s.full {
		start = s.next
	}
	for i := 0; i < n; i++ {
		out = append(out, s.buf[(start+i)%len(s.buf)])
	}
	return out
}

func (s *series) len() int {
	if s.full {
		return len(s.buf)
	}
	return s.next
}

func (s *series) latest() (Sample, bool) {
	if s.next == 0 && !s.full {
		return Sample{}, false
	}
	return s.buf[(s.next-1+len(s.buf))%len(s.buf)], true
}

// Config sizes a Store.
type Config struct {
	// Capacity is the per-series ring size (<=0 means 512 samples).
	Capacity int
	// Now is the scrape clock (nil means time.Now). Experiments pass the
	// simulated clock's Now so history is deterministic.
	Now func() time.Time
}

// Store scrapes one registry into per-metric ring-buffer series. Scrape,
// queries, and inventory reads are all safe for concurrent use — the scrape
// takes the registry snapshot outside the store lock, so ingest traffic
// recording into the registry never blocks behind a query.
type Store struct {
	reg *telemetry.Registry
	now func() time.Time
	cap int

	mu        sync.RWMutex
	series    map[string]*series
	exemplars map[string]string // histogram family -> worst-bucket trace id
	scrapes   int64

	// Continuous-profiling regions, resolved once by SetProfiler.
	profScrape *profile.Region
	profQuery  *profile.Region
}

// NewStore builds an empty store over the registry.
func NewStore(reg *telemetry.Registry, cfg Config) *Store {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 512
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Store{
		reg: reg, now: cfg.Now, cap: cfg.Capacity,
		series:    make(map[string]*series),
		exemplars: make(map[string]string),
	}
}

// Now returns the store's current clock reading.
func (st *Store) Now() time.Time { return st.now() }

// SetProfiler attributes scrape ticks ("tsdb/scrape") and query evaluation
// ("tsdb/query") to continuous-profiling regions. nil detaches.
func (st *Store) SetProfiler(p *profile.Profiler) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if p == nil {
		st.profScrape, st.profQuery = nil, nil
		return
	}
	st.profScrape = p.Region("tsdb/scrape")
	st.profQuery = p.Region("tsdb/query")
}

// profRegion reads one profiling handle under the read lock (scrape and
// query run concurrently with SetProfiler in tests).
func (st *Store) profRegion(query bool) *profile.Region {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if query {
		return st.profQuery
	}
	return st.profScrape
}

// Scrapes returns how many scrape ticks have run.
func (st *Store) Scrapes() int64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.scrapes
}

// suffixName appends a suffix to a metric family, keeping any {label} block
// at the end: name{k="v"} + "_p99" -> name_p99{k="v"}.
func suffixName(name, suffix string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '{' {
			return name[:i] + suffix + name[i:]
		}
	}
	return name + suffix
}

// Scrape takes one registry snapshot at the current clock reading and
// appends a sample to every series. Counters and gauges map to one series
// each; histograms fan out into _count and _sum counter series plus _p50,
// _p95, and _p99 gauge series derived from the registry's quantile
// estimates (which is what quantile-over-history queries read). It returns
// the number of series updated.
func (st *Store) Scrape() int {
	sp := st.profRegion(false).Start()
	defer sp.End()
	// Snapshot outside the lock: CounterFunc/GaugeFunc callbacks read
	// component stats and must not serialize against concurrent queries.
	points := st.reg.Snapshot()
	at := st.now().UnixNano()

	st.mu.Lock()
	defer st.mu.Unlock()
	st.scrapes++
	updated := 0
	add := func(name, kind string, v float64) {
		s, ok := st.series[name]
		if !ok {
			s = &series{kind: kind, buf: make([]Sample, st.cap)}
			family, labels, err := telemetry.ParseName(name)
			if err != nil {
				family, labels = name, nil // unparsable names stay selectable verbatim
			}
			s.family, s.labels = family, labels
			st.series[name] = s
		}
		s.append(Sample{TimeUnixNs: at, Value: v})
		updated++
	}
	for _, p := range points {
		switch p.Type {
		case "counter":
			add(p.Name, "counter", p.Value)
		case "gauge":
			add(p.Name, "gauge", p.Value)
		case "histogram":
			add(suffixName(p.Name, "_count"), "counter", float64(p.Count))
			add(suffixName(p.Name, "_sum"), "counter", p.Sum)
			add(suffixName(p.Name, "_p50"), "gauge", p.P50)
			add(suffixName(p.Name, "_p95"), "gauge", p.P95)
			add(suffixName(p.Name, "_p99"), "gauge", p.P99)
			if p.ExemplarTrace != "" {
				st.exemplars[p.Name] = p.ExemplarTrace
			}
		}
	}
	return updated
}

// ExemplarTrace returns the most recently scraped worst-bucket exemplar
// trace id for a histogram family ("" when none was retained) — how a
// firing alert correlates itself to an inspectable trace.
func (st *Store) ExemplarTrace(family string) string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.exemplars[family]
}

// Samples returns the retained samples of one series with timestamps in
// [from, to], chronological.
func (st *Store) Samples(name string, from, to time.Time) ([]Sample, error) {
	st.mu.RLock()
	s, ok := st.series[name]
	if !ok {
		st.mu.RUnlock()
		return nil, ErrUnknownSeries
	}
	all := s.snapshot()
	st.mu.RUnlock()
	lo, hi := from.UnixNano(), to.UnixNano()
	out := all[:0:0]
	for _, sm := range all {
		if sm.TimeUnixNs >= lo && sm.TimeUnixNs <= hi {
			out = append(out, sm)
		}
	}
	return out, nil
}

// Latest returns the newest sample of one series.
func (st *Store) Latest(name string) (Sample, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s, ok := st.series[name]
	if !ok {
		return Sample{}, ErrUnknownSeries
	}
	sm, ok := s.latest()
	if !ok {
		return Sample{}, ErrNoSamples
	}
	return sm, nil
}

// SeriesInfo describes one retained series for the inventory endpoint.
type SeriesInfo struct {
	Name         string  `json:"name"`
	Kind         string  `json:"kind"`
	Samples      int     `json:"samples"`
	FirstUnixNs  int64   `json:"firstUnixNs"`
	LatestUnixNs int64   `json:"latestUnixNs"`
	LatestValue  float64 `json:"latestValue"`
}

// Inventory lists every series in name order.
func (st *Store) Inventory() []SeriesInfo {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]SeriesInfo, 0, len(st.series))
	for name, s := range st.series {
		info := SeriesInfo{Name: name, Kind: s.kind, Samples: s.len()}
		snap := s.snapshot()
		if len(snap) > 0 {
			info.FirstUnixNs = snap[0].TimeUnixNs
			info.LatestUnixNs = snap[len(snap)-1].TimeUnixNs
			info.LatestValue = snap[len(snap)-1].Value
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
