package tsdb

import (
	"testing"
	"time"

	"repro/internal/telemetry"
)

// manualNow is a trivial settable clock for tests.
type manualNow struct{ t time.Time }

func (m *manualNow) now() time.Time          { return m.t }
func (m *manualNow) advance(d time.Duration) { m.t = m.t.Add(d) }
func newManualNow() *manualNow               { return &manualNow{t: time.Unix(1_000_000, 0)} }
func newTestStore(reg *telemetry.Registry, capacity int) (*Store, *manualNow) {
	clk := newManualNow()
	return NewStore(reg, Config{Capacity: capacity, Now: clk.now}), clk
}

func TestScrapeFansOutSeries(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("jobs_total", "jobs")
	g := reg.Gauge("queue_depth", "depth")
	h := reg.Histogram("latency_seconds", "latency", []float64{0.1, 1, 10})
	st, clk := newTestStore(reg, 16)

	c.Add(3)
	g.Set(7)
	h.ObserveExemplar(0.05, "trace-1")
	h.Observe(5)
	if n := st.Scrape(); n != 7 { // counter + gauge + histogram×5
		t.Fatalf("scrape updated %d series, want 7", n)
	}
	clk.advance(5 * time.Second)
	c.Add(2)
	st.Scrape()

	inv := st.Inventory()
	names := make(map[string]SeriesInfo, len(inv))
	for _, s := range inv {
		names[s.Name] = s
	}
	for name, kind := range map[string]string{
		"jobs_total":            "counter",
		"queue_depth":           "gauge",
		"latency_seconds_count": "counter",
		"latency_seconds_sum":   "counter",
		"latency_seconds_p50":   "gauge",
		"latency_seconds_p95":   "gauge",
		"latency_seconds_p99":   "gauge",
	} {
		info, ok := names[name]
		if !ok {
			t.Fatalf("series %q missing from inventory %v", name, names)
		}
		if info.Kind != kind || info.Samples != 2 {
			t.Fatalf("series %q = %+v, want kind %s with 2 samples", name, info, kind)
		}
	}
	last, err := st.Latest("jobs_total")
	if err != nil || last.Value != 5 {
		t.Fatalf("latest jobs_total = %+v, %v", last, err)
	}
	if tr := st.ExemplarTrace("latency_seconds"); tr != "trace-1" {
		t.Fatalf("exemplar trace = %q", tr)
	}
	if _, err := st.Latest("nope"); err != ErrUnknownSeries {
		t.Fatalf("unknown series error = %v", err)
	}
}

func TestSuffixNameKeepsLabels(t *testing.T) {
	if got := suffixName(`lat{table="crimes"}`, "_p99"); got != `lat_p99{table="crimes"}` {
		t.Fatalf("suffixName = %q", got)
	}
	if got := suffixName("lat", "_count"); got != "lat_count" {
		t.Fatalf("suffixName = %q", got)
	}
}

func TestRingEvictsOldest(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("n_total", "n")
	st, clk := newTestStore(reg, 4)
	for i := 0; i < 10; i++ {
		c.Inc()
		st.Scrape()
		clk.advance(time.Second)
	}
	samples, err := st.Samples("n_total", time.Unix(0, 0), clk.t)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 4 {
		t.Fatalf("retained %d samples, want capacity 4", len(samples))
	}
	// Chronological, and the oldest retained sample is scrape #7 (value 7).
	if samples[0].Value != 7 || samples[3].Value != 10 {
		t.Fatalf("samples = %v", samples)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].TimeUnixNs <= samples[i-1].TimeUnixNs {
			t.Fatalf("samples out of order: %v", samples)
		}
	}
	if st.Scrapes() != 10 {
		t.Fatalf("scrapes = %d", st.Scrapes())
	}
}

func TestSamplesWindowBoundaries(t *testing.T) {
	reg := telemetry.NewRegistry()
	g := reg.Gauge("v", "v")
	st, clk := newTestStore(reg, 16)
	t0 := clk.t
	for i := 0; i < 5; i++ {
		g.Set(float64(i))
		st.Scrape()
		clk.advance(10 * time.Second)
	}
	// [t0+10s, t0+30s] inclusive: samples 1, 2, 3.
	got, err := st.Samples("v", t0.Add(10*time.Second), t0.Add(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Value != 1 || got[2].Value != 3 {
		t.Fatalf("windowed samples = %v", got)
	}
}
