// Package video generates synthetic surveillance clips for the suspicious-
// behavior / crime-action recognition application (paper §IV.A.2). Each
// clip is a short grayscale frame sequence in which one or two "actors"
// (bright blobs) follow an action-specific motion script. The action
// classes are deliberately designed so that several pairs are
// indistinguishable from a single frame (walk vs. run differ only in speed;
// loiter vs. walk only in displacement), giving the CNN+LSTM architecture a
// genuine temporal signal to exploit — and making the LSTM-vs-frame-only
// ablation (experiment E7) meaningful.
package video

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// ErrBadConfig reports invalid generator parameters.
var ErrBadConfig = errors.New("video: invalid configuration")

// Action enumerates clip classes.
type Action int

// Action classes; the first four are single-actor, the last two dual-actor.
const (
	// Loiter: an actor jitters in place (suspicious lingering).
	Loiter Action = iota
	// Walk: slow constant-velocity motion.
	Walk
	// Run: fast constant-velocity motion (fleeing).
	Run
	// Fall: rapid downward motion then stillness (person down).
	Fall
	// Chase: one actor pursues another with a lag.
	Chase
	// Fight: two actors oscillate violently around a shared center.
	Fight
	// NumActions is the class count.
	NumActions
)

// String names the action.
func (a Action) String() string {
	switch a {
	case Loiter:
		return "loiter"
	case Walk:
		return "walk"
	case Run:
		return "run"
	case Fall:
		return "fall"
	case Chase:
		return "chase"
	case Fight:
		return "fight"
	default:
		return "unknown"
	}
}

// Suspicious reports whether the action should raise an operator alert in
// the application layer.
func (a Action) Suspicious() bool {
	switch a {
	case Run, Fall, Chase, Fight:
		return true
	default:
		return false
	}
}

// Config sizes a clip dataset.
type Config struct {
	Clips  int
	Frames int // timesteps per clip
	Size   int // square frame side
}

// Validate checks generator parameters.
func (c Config) Validate() error {
	if c.Clips <= 0 || c.Frames < 2 || c.Size < 8 {
		return fmt.Errorf("%w: %+v", ErrBadConfig, c)
	}
	return nil
}

// ClipSet is a labeled action-clip dataset.
type ClipSet struct {
	// Clips has shape [N, T, 1, Size, Size].
	Clips  *tensor.Tensor
	Labels []int
	Cfg    Config
}

type actorState struct {
	x, y   float64 // normalized position
	vx, vy float64 // normalized velocity per frame
}

// drawActor stamps a 3×3 bright blob at the actor position.
func drawActor(frame *tensor.Tensor, a actorState) {
	size := frame.Dim(1)
	cx := int(a.x * float64(size))
	cy := int(a.y * float64(size))
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			x, y := cx+dx, cy+dy
			if x >= 0 && x < size && y >= 0 && y < size {
				v := 1.0
				if dx != 0 || dy != 0 {
					v = 0.7
				}
				frame.Set(v, 0, y, x)
			}
		}
	}
}

func clampPos(a *actorState) {
	if a.x < 0.05 {
		a.x, a.vx = 0.05, -a.vx
	}
	if a.x > 0.95 {
		a.x, a.vx = 0.95, -a.vx
	}
	if a.y < 0.05 {
		a.y, a.vy = 0.05, -a.vy
	}
	if a.y > 0.95 {
		a.y, a.vy = 0.95, -a.vy
	}
}

// Generate renders a balanced labeled clip set.
func Generate(cfg Config, rng *rand.Rand) (*ClipSet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	clips := tensor.New(cfg.Clips, cfg.Frames, 1, cfg.Size, cfg.Size)
	labels := make([]int, cfg.Clips)
	frameLen := cfg.Size * cfg.Size
	for i := 0; i < cfg.Clips; i++ {
		action := Action(i % int(NumActions))
		labels[i] = int(action)
		// Actor initialization.
		a := actorState{x: 0.2 + 0.6*rng.Float64(), y: 0.2 + 0.6*rng.Float64()}
		b := actorState{x: 0.2 + 0.6*rng.Float64(), y: 0.2 + 0.6*rng.Float64()}
		angle := rng.Float64() * 2 * math.Pi
		switch action {
		case Walk:
			a.vx, a.vy = 0.05*math.Cos(angle), 0.05*math.Sin(angle)
		case Run:
			a.vx, a.vy = 0.15*math.Cos(angle), 0.15*math.Sin(angle)
		case Fall:
			a.y = 0.15 + 0.2*rng.Float64()
			a.vy = 0.14
		case Chase:
			a.vx, a.vy = 0.10*math.Cos(angle), 0.10*math.Sin(angle)
		}
		fightPhase := rng.Float64() * 2 * math.Pi
		for t := 0; t < cfg.Frames; t++ {
			base := (i*cfg.Frames + t) * frameLen
			frame, err := tensor.FromSlice(clips.Data()[base:base+frameLen], 1, cfg.Size, cfg.Size)
			if err != nil {
				return nil, err
			}
			// Background sensor noise.
			fd := frame.Data()
			for j := range fd {
				fd[j] = 0.05 + 0.02*rng.NormFloat64()
			}
			switch action {
			case Loiter:
				a.x += 0.01 * rng.NormFloat64()
				a.y += 0.01 * rng.NormFloat64()
			case Walk, Run:
				a.x += a.vx
				a.y += a.vy
			case Fall:
				if a.y < 0.85 {
					a.y += a.vy
				}
			case Chase:
				a.x += a.vx
				a.y += a.vy
				// Pursuer closes 30% of the gap each frame.
				b.x += 0.3 * (a.x - b.x)
				b.y += 0.3 * (a.y - b.y)
			case Fight:
				center := actorState{x: 0.5, y: 0.5}
				phase := fightPhase + float64(t)*1.9
				a.x = center.x + 0.08*math.Cos(phase)
				a.y = center.y + 0.08*math.Sin(phase)
				b.x = center.x - 0.08*math.Cos(phase)
				b.y = center.y - 0.08*math.Sin(phase)
			}
			clampPos(&a)
			clampPos(&b)
			drawActor(frame, a)
			if action == Chase || action == Fight {
				drawActor(frame, b)
			}
		}
	}
	return &ClipSet{Clips: clips, Labels: labels, Cfg: cfg}, nil
}

// FrameOnly collapses each clip to its final frame [N, 1, Size, Size] — the
// input a frame-only (no-LSTM) baseline sees.
func (s *ClipSet) FrameOnly() (*tensor.Tensor, error) {
	n, t := s.Cfg.Clips, s.Cfg.Frames
	frameLen := s.Cfg.Size * s.Cfg.Size
	out := tensor.New(n, 1, s.Cfg.Size, s.Cfg.Size)
	for i := 0; i < n; i++ {
		src := (i*t + t - 1) * frameLen
		copy(out.Data()[i*frameLen:(i+1)*frameLen], s.Clips.Data()[src:src+frameLen])
	}
	return out, nil
}
