package video

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestGenerateShapesAndBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := Config{Clips: 24, Frames: 6, Size: 16}
	set, err := Generate(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	s := set.Clips.Shape()
	if s[0] != 24 || s[1] != 6 || s[2] != 1 || s[3] != 16 || s[4] != 16 {
		t.Fatalf("clip shape %v", s)
	}
	counts := make(map[int]int)
	for _, l := range set.Labels {
		counts[l]++
	}
	if len(counts) != int(NumActions) {
		t.Fatalf("classes = %d", len(counts))
	}
	for cls, n := range counts {
		if n != 4 {
			t.Fatalf("class %d has %d clips", cls, n)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Generate(Config{Clips: 0, Frames: 5, Size: 16}, rng); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Generate(Config{Clips: 5, Frames: 1, Size: 16}, rng); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
}

// actorCentroid finds the brightness-weighted centroid of a frame.
func actorCentroid(set *ClipSet, clip, frame int) (float64, float64) {
	size := set.Cfg.Size
	var sx, sy, sw float64
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			v := set.Clips.At(clip, frame, 0, y, x)
			if v > 0.5 {
				sx += float64(x) * v
				sy += float64(y) * v
				sw += v
			}
		}
	}
	if sw == 0 {
		return -1, -1
	}
	return sx / sw, sy / sw
}

func TestMotionSpeedsDifferByAction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := Config{Clips: 60, Frames: 8, Size: 24}
	set, err := Generate(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	meanDisp := make(map[Action]float64)
	counts := make(map[Action]int)
	for i := 0; i < cfg.Clips; i++ {
		a := Action(set.Labels[i])
		if a != Loiter && a != Walk && a != Run {
			continue
		}
		total := 0.0
		valid := 0
		for f := 1; f < cfg.Frames; f++ {
			x0, y0 := actorCentroid(set, i, f-1)
			x1, y1 := actorCentroid(set, i, f)
			if x0 < 0 || x1 < 0 {
				continue
			}
			total += math.Hypot(x1-x0, y1-y0)
			valid++
		}
		if valid > 0 {
			meanDisp[a] += total / float64(valid)
			counts[a]++
		}
	}
	for a := range meanDisp {
		meanDisp[a] /= float64(counts[a])
	}
	if !(meanDisp[Loiter] < meanDisp[Walk] && meanDisp[Walk] < meanDisp[Run]) {
		t.Fatalf("displacement ordering violated: loiter=%g walk=%g run=%g",
			meanDisp[Loiter], meanDisp[Walk], meanDisp[Run])
	}
}

func TestDualActorActionsHaveMoreMass(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := Config{Clips: 36, Frames: 4, Size: 20}
	set, err := Generate(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	brightMass := func(clip int) float64 {
		total := 0.0
		for f := 0; f < cfg.Frames; f++ {
			for y := 0; y < cfg.Size; y++ {
				for x := 0; x < cfg.Size; x++ {
					if v := set.Clips.At(clip, f, 0, y, x); v > 0.5 {
						total += v
					}
				}
			}
		}
		return total
	}
	var single, dual, ns, nd float64
	for i := 0; i < cfg.Clips; i++ {
		switch Action(set.Labels[i]) {
		case Chase, Fight:
			dual += brightMass(i)
			nd++
		case Loiter, Walk:
			single += brightMass(i)
			ns++
		}
	}
	if dual/nd <= single/ns*1.3 {
		t.Fatalf("dual-actor mass %g not clearly above single %g", dual/nd, single/ns)
	}
}

func TestFrameOnlyExtraction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := Config{Clips: 6, Frames: 5, Size: 12}
	set, err := Generate(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := set.FrameOnly()
	if err != nil {
		t.Fatal(err)
	}
	s := frames.Shape()
	if s[0] != 6 || s[1] != 1 || s[2] != 12 {
		t.Fatalf("frame shape %v", s)
	}
	// Final frame content must match.
	for i := 0; i < 6; i++ {
		if frames.At(i, 0, 5, 5) != set.Clips.At(i, 4, 0, 5, 5) {
			t.Fatal("FrameOnly must copy the last frame")
		}
	}
}

func TestActionMetadata(t *testing.T) {
	if Loiter.Suspicious() || Walk.Suspicious() {
		t.Fatal("benign actions flagged")
	}
	if !Fight.Suspicious() || !Chase.Suspicious() || !Run.Suspicious() || !Fall.Suspicious() {
		t.Fatal("suspicious actions not flagged")
	}
	if Fight.String() != "fight" || Action(99).String() != "unknown" {
		t.Fatal("action names")
	}
}
