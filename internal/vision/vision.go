// Package vision generates the synthetic labeled vehicle imagery that
// substitutes for the paper's training data (the Stanford car dataset plus
// crawled images: "32,000 images for 400 classes", §IV.A.1). Each class is a
// parametric vehicle archetype — body proportions and a three-channel paint
// color — rendered into small tensors with sensor noise, so that trained
// models face a real accuracy gradient: classes with similar parameters are
// genuinely harder to separate, and a deeper model measurably beats a
// shallow one.
package vision

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/detect"
	"repro/internal/tensor"
)

// ErrBadConfig reports invalid generator parameters.
var ErrBadConfig = errors.New("vision: invalid configuration")

// Class is one vehicle archetype.
type Class struct {
	ID    int
	Make  string
	Model string
	// BodyW/BodyH are the vehicle's footprint as a fraction of image size.
	BodyW, BodyH float64
	// Color is the per-channel paint intensity in [0.3, 1].
	Color [3]float64
}

var makes = []string{
	"Acadia", "Bayou", "Cypress", "Delta", "Evangeline", "Fleur",
	"Gulf", "Heron", "Iberville", "Jolie", "Kisatchie", "Lafitte",
	"Magnolia", "Natchez", "Oak", "Pelican", "Quarter", "Red-Stick",
	"Saline", "Tchoupitoulas",
}

var models = []string{
	"Sedan", "Coupe", "SUV", "Pickup", "Van", "Wagon", "Hatchback",
	"Roadster", "Crossover", "Limousine",
}

// Catalog builds n deterministic vehicle classes (n ≤ 400 recommended; the
// paper's dataset has 400).
func Catalog(n int, rng *rand.Rand) ([]Class, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: %d classes", ErrBadConfig, n)
	}
	out := make([]Class, n)
	for i := range out {
		out[i] = Class{
			ID:    i,
			Make:  makes[i%len(makes)],
			Model: models[(i/len(makes))%len(models)],
			BodyW: 0.35 + 0.4*rng.Float64(),
			BodyH: 0.18 + 0.22*rng.Float64(),
			Color: [3]float64{
				0.3 + 0.7*rng.Float64(),
				0.3 + 0.7*rng.Float64(),
				0.3 + 0.7*rng.Float64(),
			},
		}
	}
	return out, nil
}

// Name returns a human-readable class name.
func (c Class) Name() string { return fmt.Sprintf("%s %s #%d", c.Make, c.Model, c.ID) }

// renderVehicle draws one vehicle of the class into img ([3,H,W]) with its
// body centered at (cx, cy) in normalized coordinates, returning the box.
func renderVehicle(img *tensor.Tensor, cls Class, cx, cy float64, rng *rand.Rand) detect.Box {
	size := img.Dim(1)
	w := int(cls.BodyW * float64(size))
	h := int(cls.BodyH * float64(size))
	if w < 3 {
		w = 3
	}
	if h < 3 {
		h = 3
	}
	x0 := int(cx*float64(size)) - w/2
	y0 := int(cy*float64(size)) - h/2
	clamp := func(v, hi int) int {
		if v < 0 {
			return 0
		}
		if v > hi {
			return hi
		}
		return v
	}
	// Body.
	for ch := 0; ch < 3; ch++ {
		base := cls.Color[ch]
		for y := clamp(y0, size-1); y <= clamp(y0+h-1, size-1); y++ {
			for x := clamp(x0, size-1); x <= clamp(x0+w-1, size-1); x++ {
				img.Set(base+0.05*rng.NormFloat64(), ch, y, x)
			}
		}
		// Cabin: lighter stripe across the top third.
		for y := clamp(y0, size-1); y <= clamp(y0+h/3, size-1); y++ {
			for x := clamp(x0+w/4, size-1); x <= clamp(x0+3*w/4, size-1); x++ {
				img.Set(min(1, base*1.3)+0.05*rng.NormFloat64(), ch, y, x)
			}
		}
	}
	// Wheels: two dark blobs along the bottom edge (all channels).
	wy := clamp(y0+h-1, size-1)
	for _, wx := range []int{clamp(x0+w/5, size-1), clamp(x0+4*w/5, size-1)} {
		for ch := 0; ch < 3; ch++ {
			img.Set(0.05, ch, wy, wx)
			if wy+1 < size {
				img.Set(0.05, ch, wy+1, wx)
			}
		}
	}
	return detect.Box{
		CX: cx, CY: cy,
		W: float64(w) / float64(size),
		H: float64(h) / float64(size),
	}
}

// backgroundNoise fills an image with low-intensity road texture.
func backgroundNoise(img *tensor.Tensor, rng *rand.Rand) {
	d := img.Data()
	for i := range d {
		d[i] = 0.1 + 0.03*rng.NormFloat64()
	}
}

// DetectionSet is a labeled detection dataset.
type DetectionSet struct {
	Images *tensor.Tensor // [N, 3, size, size]
	Truths [][]detect.GroundTruth
	Labels []int // class of the (single) object per image
}

// GenerateDetection renders n single-vehicle frames at random positions.
func GenerateDetection(catalog []Class, n, size int, rng *rand.Rand) (*DetectionSet, error) {
	if n <= 0 || size < 8 {
		return nil, fmt.Errorf("%w: n=%d size=%d", ErrBadConfig, n, size)
	}
	images := tensor.New(n, 3, size, size)
	truths := make([][]detect.GroundTruth, n)
	labels := make([]int, n)
	imgLen := 3 * size * size
	for i := 0; i < n; i++ {
		img, err := tensor.FromSlice(images.Data()[i*imgLen:(i+1)*imgLen], 3, size, size)
		if err != nil {
			return nil, err
		}
		backgroundNoise(img, rng)
		cls := catalog[rng.Intn(len(catalog))]
		cx := 0.3 + 0.4*rng.Float64()
		cy := 0.3 + 0.4*rng.Float64()
		box := renderVehicle(img, cls, cx, cy, rng)
		truths[i] = []detect.GroundTruth{{Box: box, Class: cls.ID}}
		labels[i] = cls.ID
	}
	return &DetectionSet{Images: images, Truths: truths, Labels: labels}, nil
}

// GenerateMultiDetection renders n frames with 1..maxObjects vehicles each,
// placed on a coarse grid so objects land in distinct detector cells (as in
// the multi-vehicle highway scenes of Fig. 6).
func GenerateMultiDetection(catalog []Class, n, size, maxObjects int, rng *rand.Rand) (*DetectionSet, error) {
	if n <= 0 || size < 8 || maxObjects < 1 || maxObjects > 4 {
		return nil, fmt.Errorf("%w: n=%d size=%d maxObjects=%d", ErrBadConfig, n, size, maxObjects)
	}
	images := tensor.New(n, 3, size, size)
	truths := make([][]detect.GroundTruth, n)
	labels := make([]int, n)
	// Four well-separated anchor positions (quadrant centers).
	anchors := [][2]float64{{0.27, 0.27}, {0.73, 0.27}, {0.27, 0.73}, {0.73, 0.73}}
	imgLen := 3 * size * size
	for i := 0; i < n; i++ {
		img, err := tensor.FromSlice(images.Data()[i*imgLen:(i+1)*imgLen], 3, size, size)
		if err != nil {
			return nil, err
		}
		backgroundNoise(img, rng)
		count := 1 + rng.Intn(maxObjects)
		order := rng.Perm(len(anchors))[:count]
		for _, ai := range order {
			cls := catalog[rng.Intn(len(catalog))]
			// Shrink the footprint so quadrant neighbors do not overlap.
			small := cls
			small.BodyW *= 0.5
			small.BodyH *= 0.6
			cx := anchors[ai][0] + 0.03*rng.NormFloat64()
			cy := anchors[ai][1] + 0.03*rng.NormFloat64()
			box := renderVehicle(img, small, cx, cy, rng)
			truths[i] = append(truths[i], detect.GroundTruth{Box: box, Class: cls.ID})
		}
		labels[i] = truths[i][0].Class
	}
	return &DetectionSet{Images: images, Truths: truths, Labels: labels}, nil
}

// ClassificationSet is a labeled classification dataset (vehicle centered).
type ClassificationSet struct {
	Images *tensor.Tensor // [N, 3, size, size]
	Labels []int
}

// GenerateClassification renders n centered vehicle crops, label-balanced
// across the catalog.
func GenerateClassification(catalog []Class, n, size int, rng *rand.Rand) (*ClassificationSet, error) {
	if n <= 0 || size < 8 {
		return nil, fmt.Errorf("%w: n=%d size=%d", ErrBadConfig, n, size)
	}
	images := tensor.New(n, 3, size, size)
	labels := make([]int, n)
	imgLen := 3 * size * size
	for i := 0; i < n; i++ {
		img, err := tensor.FromSlice(images.Data()[i*imgLen:(i+1)*imgLen], 3, size, size)
		if err != nil {
			return nil, err
		}
		backgroundNoise(img, rng)
		cls := catalog[i%len(catalog)]
		renderVehicle(img, cls, 0.5+0.04*rng.NormFloat64(), 0.5+0.04*rng.NormFloat64(), rng)
		labels[i] = cls.ID
	}
	return &ClassificationSet{Images: images, Labels: labels}, nil
}
