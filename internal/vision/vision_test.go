package vision

import (
	"errors"
	"math/rand"
	"testing"
)

func TestCatalogDeterministicAndSized(t *testing.T) {
	a, err := Catalog(400, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Catalog(400, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 400 {
		t.Fatalf("catalog size = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("catalog not deterministic at %d", i)
		}
		if a[i].BodyW <= 0 || a[i].BodyH <= 0 {
			t.Fatalf("degenerate class %d: %+v", i, a[i])
		}
		for _, c := range a[i].Color {
			if c < 0.3 || c > 1 {
				t.Fatalf("color out of range: %+v", a[i])
			}
		}
	}
	if a[0].Name() == "" {
		t.Fatal("empty class name")
	}
	if _, err := Catalog(0, rand.New(rand.NewSource(1))); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
}

func TestGenerateDetectionShapesAndBoxes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	catalog, _ := Catalog(10, rng)
	set, err := GenerateDetection(catalog, 20, 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	if set.Images.Dim(0) != 20 || set.Images.Dim(1) != 3 || set.Images.Dim(2) != 16 {
		t.Fatalf("images shape %v", set.Images.Shape())
	}
	if len(set.Truths) != 20 || len(set.Labels) != 20 {
		t.Fatalf("labels %d truths %d", len(set.Labels), len(set.Truths))
	}
	for i, truths := range set.Truths {
		if len(truths) != 1 {
			t.Fatalf("image %d has %d objects", i, len(truths))
		}
		b := truths[0].Box
		if b.CX < 0 || b.CX > 1 || b.CY < 0 || b.CY > 1 || b.W <= 0 || b.H <= 0 || b.W > 1 || b.H > 1 {
			t.Fatalf("bad box %+v", b)
		}
		if truths[0].Class != set.Labels[i] {
			t.Fatal("label/truth mismatch")
		}
	}
	if _, err := GenerateDetection(catalog, 0, 16, rng); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
}

func TestVehiclePixelsBrighterThanBackground(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	catalog, _ := Catalog(4, rng)
	set, err := GenerateDetection(catalog, 5, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		b := set.Truths[i][0].Box
		size := 20
		cx, cy := int(b.CX*float64(size)), int(b.CY*float64(size))
		center := set.Images.At(i, 0, cy, cx)
		corner := set.Images.At(i, 0, 0, 0)
		if center <= corner {
			t.Fatalf("image %d: vehicle %g not brighter than background %g", i, center, corner)
		}
	}
}

func TestGenerateClassificationBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	catalog, _ := Catalog(5, rng)
	set, err := GenerateClassification(catalog, 50, 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	for _, l := range set.Labels {
		counts[l]++
	}
	for cls, n := range counts {
		if n != 10 {
			t.Fatalf("class %d has %d samples", cls, n)
		}
	}
}

func TestPaperScaleDatasetGeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale generation skipped in -short")
	}
	// The paper's dataset: 32,000 images, 400 classes. Generate at reduced
	// resolution to confirm the generator scales.
	rng := rand.New(rand.NewSource(5))
	catalog, err := Catalog(400, rng)
	if err != nil {
		t.Fatal(err)
	}
	set, err := GenerateClassification(catalog, 32000, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if set.Images.Dim(0) != 32000 {
		t.Fatalf("images = %d", set.Images.Dim(0))
	}
	seen := make(map[int]bool)
	for _, l := range set.Labels {
		seen[l] = true
	}
	if len(seen) != 400 {
		t.Fatalf("classes represented = %d", len(seen))
	}
}
