// Package viz renders experiment output as plain-text tables, histograms,
// and time-series sparklines. It stands in for the paper's D3-based
// visualization layer: the cyberinfrastructure's reports are rendered
// human-readable without a browser, and structured output is available as
// JSON for downstream tooling.
package viz

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: append([]string(nil), headers...)}
}

// AddRow appends a row; values are formatted with %v, floats with %.4g.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// JSON renders the table as a JSON array of objects keyed by header.
func (t *Table) JSON() (string, error) {
	out := make([]map[string]string, 0, len(t.rows))
	for _, row := range t.rows {
		m := make(map[string]string, len(t.Headers))
		for i, h := range t.Headers {
			if i < len(row) {
				m[h] = row[i]
			}
		}
		out = append(out, m)
	}
	raw, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return "", fmt.Errorf("viz marshal: %w", err)
	}
	return string(raw), nil
}

// Histogram renders labeled values as horizontal bars scaled to maxWidth.
func Histogram(title string, labels []string, values []float64, maxWidth int) string {
	if maxWidth <= 0 {
		maxWidth = 40
	}
	maxVal := 0.0
	maxLabel := 0
	for i, v := range values {
		if v > maxVal {
			maxVal = v
		}
		if i < len(labels) && len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "== %s ==\n", title)
	}
	for i, v := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		n := 0
		if maxVal > 0 {
			n = int(math.Round(v / maxVal * float64(maxWidth)))
		}
		fmt.Fprintf(&b, "%-*s | %s %.4g\n", maxLabel, label, strings.Repeat("#", n), v)
	}
	return b.String()
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a numeric series as a compact unicode strip.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// Series is a named time series for report output.
type Series struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// SeriesReport renders several series with sparklines and summary stats.
func SeriesReport(title string, series []Series) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "== %s ==\n", title)
	}
	for _, s := range series {
		mean, lo, hi := Stats(s.Values)
		fmt.Fprintf(&b, "%-24s %s  min=%.4g mean=%.4g max=%.4g\n",
			s.Name, Sparkline(s.Values), lo, mean, hi)
	}
	return b.String()
}

// Stats returns the mean, min, and max of a series (zeros for empty input).
func Stats(values []float64) (mean, lo, hi float64) {
	if len(values) == 0 {
		return 0, 0, 0
	}
	lo, hi = values[0], values[0]
	sum := 0.0
	for _, v := range values {
		sum += v
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return sum / float64(len(values)), lo, hi
}

// ScatterMap renders normalized (x, y) points onto a width×height character
// grid — the text analog of the paper's camera-location map (Fig. 2). y
// grows downward on screen, so callers pass y already flipped if they want
// north-up.
func ScatterMap(title string, xs, ys []float64, width, height int, marker rune) string {
	if width < 2 {
		width = 40
	}
	if height < 2 {
		height = 15
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = make([]rune, width)
		for j := range grid[i] {
			grid[i][j] = '·'
		}
	}
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	for i := 0; i < n; i++ {
		x, y := xs[i], ys[i]
		if x < 0 || x > 1 || y < 0 || y > 1 {
			continue
		}
		col := int(x * float64(width-1))
		row := int(y * float64(height-1))
		grid[row][col] = marker
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "== %s ==\n", title)
	}
	for _, row := range grid {
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	return b.String()
}

// ConfusionMatrix builds a labeled confusion-matrix table from parallel
// truth/prediction slices over k classes. Rows are truths, columns
// predictions.
func ConfusionMatrix(title string, truths, preds []int, names []string) *Table {
	k := len(names)
	counts := make([][]int, k)
	for i := range counts {
		counts[i] = make([]int, k)
	}
	n := len(truths)
	if len(preds) < n {
		n = len(preds)
	}
	for i := 0; i < n; i++ {
		t, p := truths[i], preds[i]
		if t >= 0 && t < k && p >= 0 && p < k {
			counts[t][p]++
		}
	}
	headers := append([]string{"truth\\pred"}, names...)
	tb := NewTable(title, headers...)
	for i, name := range names {
		row := make([]any, 0, k+1)
		row = append(row, name)
		for j := 0; j < k; j++ {
			row = append(row, counts[i][j])
		}
		tb.AddRow(row...)
	}
	return tb
}
