package viz

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "city", "cameras")
	tb.AddRow("Baton Rouge", 42)
	tb.AddRow("New Orleans", 57.5)
	out := tb.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "Baton Rouge") || !strings.Contains(out, "57.5") {
		t.Fatalf("missing rows:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title, header, sep, 2 rows → 5? title+header+sep+2 = 5
		// title + header + separator + 2 data rows
		if len(lines) != 5 {
			t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
		}
	}
}

func TestTableJSON(t *testing.T) {
	tb := NewTable("", "k", "v")
	tb.AddRow("a", 1)
	s, err := tb.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]string
	if err := json.Unmarshal([]byte(s), &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 1 || parsed[0]["k"] != "a" || parsed[0]["v"] != "1" {
		t.Fatalf("parsed = %v", parsed)
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram("H", []string{"a", "bb"}, []float64{1, 2}, 10)
	if !strings.Contains(out, "##########") {
		t.Fatalf("max bar not full width:\n%s", out)
	}
	if !strings.Contains(out, "#####") {
		t.Fatalf("half bar missing:\n%s", out)
	}
	// Zero values render without panic.
	if out := Histogram("", []string{"z"}, []float64{0}, 10); !strings.Contains(out, "z") {
		t.Fatalf("zero histogram:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty input should render empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline runes = %q", s)
	}
	flat := Sparkline([]float64{5, 5, 5})
	if flat != "▁▁▁" {
		t.Fatalf("flat sparkline = %q", flat)
	}
}

func TestStats(t *testing.T) {
	mean, lo, hi := Stats([]float64{1, 2, 3})
	if mean != 2 || lo != 1 || hi != 3 {
		t.Fatalf("Stats = %g %g %g", mean, lo, hi)
	}
	if m, l, h := Stats(nil); m != 0 || l != 0 || h != 0 {
		t.Fatal("empty stats should be zeros")
	}
}

func TestSeriesReport(t *testing.T) {
	out := SeriesReport("R", []Series{{Name: "loss", Values: []float64{3, 2, 1}}})
	if !strings.Contains(out, "loss") || !strings.Contains(out, "min=1") {
		t.Fatalf("report:\n%s", out)
	}
}

func TestScatterMap(t *testing.T) {
	out := ScatterMap("Map", []float64{0, 1, 0.5}, []float64{0, 1, 0.5}, 11, 5, '#')
	if !strings.Contains(out, "== Map ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Corners and center carry markers.
	if []rune(lines[1])[0] != '#' {
		t.Fatalf("top-left missing marker:\n%s", out)
	}
	if []rune(lines[5])[10] != '#' {
		t.Fatalf("bottom-right missing marker:\n%s", out)
	}
	if []rune(lines[3])[5] != '#' {
		t.Fatalf("center missing marker:\n%s", out)
	}
	// Out-of-range points are ignored without panic.
	_ = ScatterMap("", []float64{-1, 2}, []float64{0.5, 0.5}, 5, 3, 'x')
}

func TestConfusionMatrix(t *testing.T) {
	tb := ConfusionMatrix("CM", []int{0, 0, 1, 1}, []int{0, 1, 1, 1}, []string{"a", "b"})
	out := tb.String()
	if !strings.Contains(out, "truth\\pred") {
		t.Fatalf("headers:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	// Row a: [1 1]; row b: [0 2].
	if !strings.Contains(out, "a") || !strings.Contains(out, "2") {
		t.Fatalf("content:\n%s", out)
	}
}
