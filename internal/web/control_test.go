package web

import (
	"net/http"
	"testing"

	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/faults"
)

// TestControlEndpoint exercises the adaptive-controller snapshot: knob
// values reflect live state, per-kind counters are present for every
// action kind, and ?limit= trims the action history newest-kept.
func TestControlEndpoint(t *testing.T) {
	srv, inf := newTestServer(t)

	out := getJSON(t, srv.URL+"/api/control", http.StatusOK)
	if out["enabled"] != true {
		t.Fatalf("enabled = %v, want true", out["enabled"])
	}
	if got := out["offloadThreshold"].(float64); got != 0.5 {
		t.Fatalf("offloadThreshold = %v, want default 0.5", got)
	}
	if got := out["inferenceTier"].(string); got != "server" {
		t.Fatalf("inferenceTier = %q, want server", got)
	}
	if got := out["shedLevel"].(float64); got != 0 {
		t.Fatalf("shedLevel = %v, want 0", got)
	}
	counts := out["actionCounts"].(map[string]any)
	for _, kind := range control.ActionKinds() {
		if _, ok := counts[string(kind)]; !ok {
			t.Fatalf("actionCounts missing kind %q: %v", kind, counts)
		}
	}

	// Move a knob out from under the handler: the snapshot must be live,
	// not captured at server construction.
	inf.Knobs.SetOffloadThreshold(0.3)
	inf.Knobs.SetShedLevel(1)
	inf.Knobs.SetInferenceTier(control.TierFog)
	out = getJSON(t, srv.URL+"/api/control", http.StatusOK)
	if got := out["offloadThreshold"].(float64); got != 0.3 {
		t.Fatalf("offloadThreshold = %v, want 0.3", got)
	}
	if got := out["inferenceTier"].(string); got != "fog" {
		t.Fatalf("inferenceTier = %q, want fog", got)
	}
	if got := out["shedLevel"].(float64); got != 1 {
		t.Fatalf("shedLevel = %v, want 1", got)
	}
}

// TestControlEndpointActionsAndLimit drives the controller through real
// actions (via a degraded monitor loop) and checks history trimming.
func TestControlEndpointActionsAndLimit(t *testing.T) {
	srv, inf := newTestServer(t)

	// Force a hard storage partition so undelivered records accumulate and
	// the controller escalates across several monitor ticks.
	inf.EnableChaos(faults.NewInjector(faults.Config{
		Seed: 99, BlackoutEvery: 1, BlackoutLen: 1, TargetOps: []string{"hbase."},
	}))
	for i := 0; i < 12; i++ {
		frames := []core.FrameEvent{
			{CameraID: "cam-1", Seq: i, Class: "vehicle", Confidence: 0.9,
				Priority: 2, RawBytes: 2048, FeatureBytes: 256},
			{CameraID: "cam-2", Seq: i, Class: "person", Confidence: 0.2,
				Priority: 0, RawBytes: 2048, FeatureBytes: 256},
		}
		if _, err := inf.IngestFrames(frames, "/warehouse/feat"); err != nil {
			t.Fatal(err)
		}
		inf.MonitorTick()
	}

	out := getJSON(t, srv.URL+"/api/control", http.StatusOK)
	actions := out["actions"].([]any)
	if len(actions) < 2 {
		t.Fatalf("expected multiple controller actions under sustained faults, got %d", len(actions))
	}
	first := actions[0].(map[string]any)
	for _, key := range []string{"tick", "kind", "reason", "value"} {
		if _, ok := first[key]; !ok {
			t.Fatalf("action row missing %q: %v", key, first)
		}
	}
	if out["degraded"] != true {
		t.Fatalf("degraded = %v, want true under sustained faults", out["degraded"])
	}

	limited := getJSON(t, srv.URL+"/api/control?limit=1", http.StatusOK)
	lacts := limited["actions"].([]any)
	if len(lacts) != 1 {
		t.Fatalf("limit=1 returned %d actions", len(lacts))
	}
	// Newest is kept: the single returned action matches the full list's tail.
	last := actions[len(actions)-1].(map[string]any)
	got := lacts[0].(map[string]any)
	if got["tick"] != last["tick"] || got["kind"] != last["kind"] {
		t.Fatalf("limit kept %v, want newest %v", got, last)
	}

	getJSON(t, srv.URL+"/api/control?limit=bogus", http.StatusBadRequest)
}
