package web

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// promSample is one parsed exposition sample line.
type promSample struct {
	name          string // full series name without the label block
	labels        string // "{k=\"v\",...}" or ""
	value         float64
	hasExemplar   bool
	exemplarTrace string
	exemplarValue float64
}

// Label values may contain backslash escapes (\\, \", \n) per the exposition
// spec, so the value pattern must accept escaped characters, not stop at the
// first quote.
var labelBlockRe = regexp.MustCompile(`^\{[A-Za-z_][A-Za-z0-9_]*="(?:[^"\\]|\\.)*"(,[A-Za-z_][A-Za-z0-9_]*="(?:[^"\\]|\\.)*")*\}$`)
var exemplarRe = regexp.MustCompile(`^# \{trace_id="([^"]+)"\} (\S+)$`)

// parsePromExposition is a minimal Prometheus text-format (0.0.4) parser:
// every line must be a HELP line, a TYPE line, or a well-formed sample with
// an optional exemplar trailer. Anything else is an error — this is the
// round-trip guarantee for whatever WritePrometheus emits.
func parsePromExposition(body string) (types map[string]string, samples []promSample, err error) {
	types = make(map[string]string)
	for i, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		lineNo := i + 1
		switch {
		case line == "":
			return nil, nil, fmt.Errorf("line %d: empty line", lineNo)
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			if fields := strings.SplitN(rest, " ", 2); len(fields) != 2 || fields[0] == "" || fields[1] == "" {
				return nil, nil, fmt.Errorf("line %d: malformed HELP: %q", lineNo, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				return nil, nil, fmt.Errorf("line %d: malformed TYPE: %q", lineNo, line)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram":
			default:
				return nil, nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[1])
			}
			types[fields[0]] = fields[1]
		case strings.HasPrefix(line, "#"):
			return nil, nil, fmt.Errorf("line %d: unexpected comment: %q", lineNo, line)
		default:
			s, err := parsePromSample(line)
			if err != nil {
				return nil, nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			samples = append(samples, s)
		}
	}
	return types, samples, nil
}

func parsePromSample(line string) (promSample, error) {
	var s promSample
	body := line
	if at := strings.Index(line, " # "); at >= 0 {
		body = line[:at]
		m := exemplarRe.FindStringSubmatch(line[at+1:])
		if m == nil {
			return s, fmt.Errorf("malformed exemplar trailer: %q", line)
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return s, fmt.Errorf("exemplar value %q: %v", m[2], err)
		}
		s.hasExemplar, s.exemplarTrace, s.exemplarValue = true, m[1], v
	}
	name := body
	if brace := strings.Index(body, "{"); brace >= 0 {
		end := strings.Index(body, "}")
		if end < brace {
			return s, fmt.Errorf("unclosed label block: %q", body)
		}
		s.labels = body[brace : end+1]
		if !labelBlockRe.MatchString(s.labels) {
			return s, fmt.Errorf("malformed label block %q", s.labels)
		}
		name = body[:brace] + body[end+1:]
	}
	fields := strings.Fields(name)
	if len(fields) != 2 {
		return s, fmt.Errorf("want 'name value', got %q", body)
	}
	v, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return s, fmt.Errorf("value %q: %v", fields[1], err)
	}
	s.name, s.value = fields[0], v
	return s, nil
}

// familyOf resolves a sample back to its TYPE family, unwrapping the
// histogram sub-series suffixes.
func familyOf(types map[string]string, name string) (string, bool) {
	if _, ok := types[name]; ok {
		return name, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && types[base] == "histogram" {
			return base, true
		}
	}
	return "", false
}

// TestMetricsExpositionRoundTrips fetches /metrics after live traffic and a
// monitor tick and asserts every single line parses, every sample belongs
// to a declared family, histogram buckets are cumulative with the +Inf
// bucket equal to _count, and exemplar trailers resolve to retained traces.
func TestMetricsExpositionRoundTrips(t *testing.T) {
	srv, inf := newTestServer(t)
	inf.MonitorTick()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	types, samples, err := parsePromExposition(string(raw))
	if err != nil {
		t.Fatalf("exposition does not round-trip: %v", err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples")
	}

	// Every sample maps to a declared TYPE; values are finite.
	for _, s := range samples {
		fam, ok := familyOf(types, s.name)
		if !ok {
			t.Fatalf("sample %q has no TYPE line", s.name)
		}
		if math.IsNaN(s.value) || math.IsInf(s.value, 0) {
			t.Fatalf("sample %s%s is not finite: %v", s.name, s.labels, s.value)
		}
		if s.hasExemplar {
			if !strings.HasSuffix(s.name, "_bucket") {
				t.Fatalf("exemplar on non-bucket sample %s", s.name)
			}
			if _, err := inf.Tracer.Trace(s.exemplarTrace); err != nil {
				t.Fatalf("exemplar trace %q on %s unresolvable: %v", s.exemplarTrace, s.name, err)
			}
		}
		_ = fam
	}

	// Histogram invariants: buckets cumulative in document order, +Inf
	// bucket equals _count.
	lastBucket := make(map[string]float64) // family+labels-minus-le -> last cumulative
	infBucket := make(map[string]float64)
	countVal := make(map[string]float64)
	stripLe := regexp.MustCompile(`,?le="[^"]*"`)
	for _, s := range samples {
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			key := strings.TrimSuffix(s.name, "_bucket") + stripLe.ReplaceAllString(s.labels, "")
			if s.value < lastBucket[key] {
				t.Fatalf("bucket for %s went backwards: %v < %v", key, s.value, lastBucket[key])
			}
			lastBucket[key] = s.value
			if strings.Contains(s.labels, `le="+Inf"`) {
				infBucket[key] = s.value
			}
		case strings.HasSuffix(s.name, "_count"):
			if base := strings.TrimSuffix(s.name, "_count"); types[base] == "histogram" {
				countVal[base+s.labels] = s.value
			}
		}
	}
	if len(infBucket) == 0 {
		t.Fatal("no histogram buckets in exposition")
	}
	for key, cum := range infBucket {
		key = strings.TrimSuffix(key, "{}")
		if cnt, ok := countVal[key]; !ok || cnt != cum {
			t.Fatalf("histogram %s: +Inf bucket %v != _count %v (ok=%v)", key, cum, cnt, ok)
		}
	}

	// The monitoring families this PR adds must be present alongside one
	// exemplar-carrying histogram.
	for family, kind := range map[string]string{
		"cityinfra_telemetry_events_dropped_total": "counter",
		"cityinfra_pipeline_undelivered_total":     "counter",
		"cityinfra_tsdb_alerts_firing":             "gauge",
		"cityinfra_tsdb_alerts_pending":            "gauge",
		"cityinfra_tsdb_alert_state":               "gauge",
		"cityinfra_pipeline_ingest_seconds":        "histogram",
	} {
		if types[family] != kind {
			t.Fatalf("family %s: type %q, want %q", family, types[family], kind)
		}
	}
	anyExemplar := false
	for _, s := range samples {
		if s.hasExemplar {
			anyExemplar = true
			break
		}
	}
	if !anyExemplar {
		t.Fatal("no exemplar trailer anywhere in the exposition")
	}
}

// TestExpositionEscapedLabelValues proves a label value holding quotes,
// backslashes, and a newline survives the exposition round trip with
// spec-correct escapes: the emitted block uses exactly \\, \", and \n, the
// whole line still parses, and unescaping restores the original bytes.
func TestExpositionEscapedLabelValues(t *testing.T) {
	srv, inf := newTestServer(t)
	weird := "C:\\tmp \"x\"\nend"
	inf.Telemetry.Counter(
		telemetry.WithLabel("cityinfra_test_escapes_total", "path", weird),
		"escape round-trip fixture").Add(3)
	inf.MonitorTick()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	_, samples, err := parsePromExposition(string(raw))
	if err != nil {
		t.Fatalf("exposition with escaped label values does not round-trip: %v", err)
	}
	found := false
	for _, s := range samples {
		if s.name != "cityinfra_test_escapes_total" {
			continue
		}
		found = true
		if s.value != 3 {
			t.Fatalf("escaped sample value = %v, want 3", s.value)
		}
		want := `{path="C:\\tmp \"x\"\nend"}`
		if s.labels != want {
			t.Fatalf("label block = %q, want %q", s.labels, want)
		}
		inner := s.labels[strings.Index(s.labels, `"`)+1 : strings.LastIndex(s.labels, `"`)]
		got, err := telemetry.UnescapeLabelValue(inner)
		if err != nil {
			t.Fatalf("unescape %q: %v", inner, err)
		}
		if got != weird {
			t.Fatalf("round trip = %q, want %q", got, weird)
		}
	}
	if !found {
		t.Fatal("escaped sample missing from exposition")
	}
}
