package web

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"

	"repro/internal/core"
)

// camFrames builds one confident frame per listed camera so each ingests,
// delivers, and exits locally (no offload archive needed).
func camFrames(cams []string, seq int) []core.FrameEvent {
	out := make([]core.FrameEvent, 0, len(cams))
	for _, id := range cams {
		out = append(out, core.FrameEvent{
			CameraID: id, Seq: seq, Class: "vehicle", Confidence: 0.95,
			RawBytes: 1 << 10, FeatureBytes: 256, Priority: 1,
		})
	}
	return out
}

// TestQueryLabelSelectors drives per-camera frame traffic and exercises the
// label-aware query path end to end: an exact selector answers with a single
// value, a bare vec family fans out into a vector, and sum by (camera)
// groups it back — all through GET /api/query.
func TestQueryLabelSelectors(t *testing.T) {
	srv, inf := newTestServer(t)
	cams := []string{"cam-1", "cam-2", "cam-3"}
	for seq := 1; seq <= 4; seq++ {
		if _, err := inf.IngestFrames(camFrames(cams, seq), ""); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		inf.MonitorTick()
	}

	// Exact selector: single-valued, so the historical one-object shape.
	sel := `cityinfra_camera_frames_ingested_total{camera="cam-2"}`
	out := getJSON(t, srv.URL+"/api/query?expr="+url.QueryEscape(sel), http.StatusOK)
	if out["value"].(float64) != 4 {
		t.Fatalf("selector value = %v, want 4", out["value"])
	}
	if out["labels"].(map[string]any)["camera"] != "cam-2" {
		t.Fatalf("selector labels = %v", out["labels"])
	}

	// Bare vec family matches every child plus the always-materialized
	// {~other} rollup (zero while nothing has been demoted): vector shape
	// with one value per series.
	out = getJSON(t, srv.URL+"/api/query?expr=cityinfra_camera_frames_ingested_total", http.StatusOK)
	if int(out["count"].(float64)) != len(cams)+1 {
		t.Fatalf("vector count = %v, want %d", out["count"], len(cams)+1)
	}
	seen := map[string]float64{}
	for _, v := range out["values"].([]any) {
		row := v.(map[string]any)
		seen[row["labels"].(map[string]any)["camera"].(string)] = row["value"].(float64)
	}
	for _, id := range cams {
		if seen[id] != 4 {
			t.Fatalf("camera %s vector value = %v, want 4 (%v)", id, seen[id], seen)
		}
	}
	if other, ok := seen["~other"]; !ok || other != 0 {
		t.Fatalf("rollup series = %v, %v; want present at 0", other, ok)
	}

	// Grouped aggregation keeps one value per camera (and the rollup group);
	// ungrouped sum folds the whole fleet into a single value.
	out = getJSON(t, srv.URL+"/api/query?expr="+url.QueryEscape(
		"sum by (camera) (cityinfra_camera_frames_ingested_total)"), http.StatusOK)
	if int(out["count"].(float64)) != len(cams)+1 {
		t.Fatalf("sum by count = %v, want %d", out["count"], len(cams)+1)
	}
	out = getJSON(t, srv.URL+"/api/query?expr="+url.QueryEscape(
		"sum(cityinfra_camera_frames_ingested_total)"), http.StatusOK)
	if out["value"].(float64) != float64(4*len(cams)) {
		t.Fatalf("sum value = %v, want %d", out["value"], 4*len(cams))
	}

	// A well-formed selector that matches nothing is a 404, same taxonomy
	// as an unknown bare series.
	getJSON(t, srv.URL+"/api/query?expr="+url.QueryEscape(
		`cityinfra_camera_frames_ingested_total{camera="cam-999"}`), http.StatusNotFound)
}

// TestQueryMalformedSelectors pins the 400 taxonomy for label-matcher syntax
// errors: every malformed selector must be rejected as a bad request, never
// confused with a missing series (404) or silently matched as a bare name.
func TestQueryMalformedSelectors(t *testing.T) {
	srv, _ := newTestServer(t)
	for _, tc := range []struct {
		name string
		expr string
	}{
		{"unclosed brace", `cityinfra_camera_frames_ingested_total{camera="cam-1"`},
		{"empty matcher block", `cityinfra_camera_frames_ingested_total{}`},
		{"missing value", `cityinfra_camera_frames_ingested_total{camera=}`},
		{"unquoted value", `cityinfra_camera_frames_ingested_total{camera=cam-1}`},
		{"bad escape", `cityinfra_camera_frames_ingested_total{camera="a\q"}`},
		{"unterminated value", `cityinfra_camera_frames_ingested_total{camera="cam-1}`},
		{"bad label name", `cityinfra_camera_frames_ingested_total{9camera="x"}`},
		{"trailing comma", `cityinfra_camera_frames_ingested_total{camera="x",}`},
		{"selector inside rate unclosed", `rate(cityinfra_camera_frames_ingested_total{camera="x"[15s])`},
		{"empty by clause", `sum by () (cityinfra_camera_frames_ingested_total)`},
		{"two by labels", `sum by (camera, tier) (cityinfra_camera_frames_ingested_total)`},
		{"unclosed by clause", `sum by (camera (cityinfra_camera_frames_ingested_total)`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			out := getJSON(t, srv.URL+"/api/query?expr="+url.QueryEscape(tc.expr), http.StatusBadRequest)
			if out["error"] == "" {
				t.Fatalf("400 body carries no error: %v", out)
			}
		})
	}
}

// TestCamerasEndpoint exercises the fleet table: per-camera rows with exact
// counts, the cardinality summary, burn-ordered ranking, and the parameter
// taxonomy (bad sort and limit are 400s; a fleet-disabled stack is a 404).
func TestCamerasEndpoint(t *testing.T) {
	srv, inf := newTestServer(t)
	cams := []string{"cam-4", "cam-5"}
	for seq := 1; seq <= 3; seq++ {
		if _, err := inf.IngestFrames(camFrames(cams, seq), ""); err != nil {
			t.Fatal(err)
		}
	}
	inf.MonitorTick()

	out := getJSON(t, srv.URL+"/api/cameras", http.StatusOK)
	if int(out["total"].(float64)) != len(cams) {
		t.Fatalf("total = %v, want %d", out["total"], len(cams))
	}
	rows := out["cameras"].([]any)
	if len(rows) != len(cams) {
		t.Fatalf("rows = %d, want %d", len(rows), len(cams))
	}
	for i, want := range cams { // id-sorted
		row := rows[i].(map[string]any)
		if row["camera"] != want {
			t.Fatalf("row %d camera = %v, want %s", i, row["camera"], want)
		}
		if row["ingested"].(float64) != 3 || row["delivered"].(float64) != 3 {
			t.Fatalf("row %v counts wrong", row)
		}
	}
	summary := out["summary"].(map[string]any)
	maxSeries := summary["maxSeries"].(float64)
	if maxSeries <= 0 {
		t.Fatalf("summary maxSeries = %v", maxSeries)
	}
	for fam, n := range summary["seriesPerFamily"].(map[string]any) {
		if n.(float64) > maxSeries+1 {
			t.Fatalf("family %s exposes %v series, want <= K+1 = %v", fam, n, maxSeries+1)
		}
	}

	// Healthy fleet: nothing is burning, so the burn ranking is empty.
	out = getJSON(t, srv.URL+"/api/cameras?sort=burn", http.StatusOK)
	if int(out["total"].(float64)) != 0 {
		t.Fatalf("burn ranking on a healthy fleet = %v", out)
	}

	// ?limit caps rows, total keeps the uncapped count.
	out = getJSON(t, srv.URL+"/api/cameras?limit=1", http.StatusOK)
	if len(out["cameras"].([]any)) != 1 || int(out["total"].(float64)) != len(cams) {
		t.Fatalf("limited table = %v", out)
	}

	getJSON(t, srv.URL+"/api/cameras?sort=rate", http.StatusBadRequest)
	getJSON(t, srv.URL+"/api/cameras?limit=bogus", http.StatusBadRequest)

	// A stack booted without fleet telemetry 404s instead of faking rows.
	cfg := core.DefaultConfig()
	cfg.Cameras = 30
	cfg.DisableFleetTelemetry = true
	bare, err := core.New(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	bareSrv := httptest.NewServer(NewServer(bare))
	defer bareSrv.Close()
	getJSON(t, bareSrv.URL+"/api/cameras", http.StatusNotFound)
}

// TestFleetReadDuringIngest hammers per-camera frame ingest from several
// goroutines while monitor ticks scrape the registry and HTTP readers pull
// the fleet table and labeled queries — the lock-discipline proof for the
// dimensional path, meaningful under -race.
func TestFleetReadDuringIngest(t *testing.T) {
	srv, inf := newTestServer(t)
	// Seed one camera so the query path always has a series to resolve.
	if _, err := inf.IngestFrames(camFrames([]string{"cam-0"}, 1), ""); err != nil {
		t.Fatal(err)
	}
	inf.MonitorTick()

	const writers, frames = 4, 25
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("cam-%d", w)
			for seq := 2; seq < 2+frames; seq++ {
				if _, err := inf.IngestFrames(camFrames([]string{id}, seq), ""); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	tickerDone := make(chan struct{})
	go func() {
		defer close(tickerDone)
		for {
			select {
			case <-stop:
				return
			default:
				inf.MonitorTick()
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				for _, path := range []string{
					"/api/cameras",
					"/api/cameras?sort=burn",
					"/api/query?expr=" + url.QueryEscape(`cityinfra_camera_frames_ingested_total{camera="cam-0"}`),
					"/metrics",
				} {
					resp, err := http.Get(srv.URL + path)
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("GET %s = %d mid-ingest", path, resp.StatusCode)
						return
					}
				}
			}
		}()
	}
	// Writers and readers finish on their own; the ticker loops until then.
	wg.Wait()
	close(stop)
	<-tickerDone

	// Exact counts survived the concurrency: every writer's camera shows all
	// its frames in the fleet table.
	inf.MonitorTick()
	out := getJSON(t, srv.URL+"/api/cameras", http.StatusOK)
	byID := map[string]map[string]any{}
	for _, r := range out["cameras"].([]any) {
		row := r.(map[string]any)
		byID[row["camera"].(string)] = row
	}
	for w := 0; w < writers; w++ {
		id := fmt.Sprintf("cam-%d", w)
		want := float64(frames)
		if w == 0 {
			want++ // the seeding frame
		}
		if row, ok := byID[id]; !ok || row["ingested"].(float64) != want {
			t.Fatalf("camera %s ingested = %v, want %v", id, byID[id], want)
		}
	}
}
