package web

import "net/http"

// handleIncidents serves the incident correlation engine's records: the
// open incident first (when one exists), then resolved incidents newest
// first. ?limit= caps the listing; counters give the lifetime totals.
func (s *Server) handleIncidents(w http.ResponseWriter, r *http.Request) {
	limit, err := parseLimit(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	incs := s.inf.Incidents.Incidents(limit)
	writeJSON(w, http.StatusOK, map[string]any{
		"count":     len(incs),
		"open":      s.inf.Incidents.OpenCount(),
		"opened":    s.inf.Incidents.OpenedTotal(),
		"resolved":  s.inf.Incidents.ResolvedTotal(),
		"incidents": incs,
	})
}

// handleGraph serves the trace-derived component dependency graph as JSON
// adjacency: nodes (stage and backend) and directed edges with RED stats
// (traversal rate, folded-in error counts, span-duration diagnostics).
// ?limit= caps the edge list after its deterministic (from, to) sort.
func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	limit, err := parseLimit(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	gv := s.inf.Incidents.Graph()
	totalEdges := len(gv.Edges)
	if limit > 0 && limit < len(gv.Edges) {
		gv.Edges = gv.Edges[:limit]
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"tick":       gv.Tick,
		"nodeCount":  len(gv.Nodes),
		"edgeCount":  len(gv.Edges),
		"totalEdges": totalEdges,
		"nodes":      gv.Nodes,
		"edges":      gv.Edges,
	})
}
