package web

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"testing"

	"repro/internal/citydata"
	"repro/internal/faults"
)

func TestGraphEndpoint(t *testing.T) {
	srv, inf := newTestServer(t)
	// Boot-time ingestion already traced the tweet pipeline; one tick folds
	// those spans into the dependency graph.
	inf.MonitorTick()

	out := getJSON(t, srv.URL+"/api/graph", http.StatusOK)
	if out["nodeCount"].(float64) == 0 || out["edgeCount"].(float64) == 0 {
		t.Fatalf("empty graph after traced ingestion: %v", out)
	}
	nodes := out["nodes"].([]any)
	byName := map[string]map[string]any{}
	for _, n := range nodes {
		row := n.(map[string]any)
		byName[row["name"].(string)] = row
	}
	root, ok := byName["ingest-tweets"]
	if !ok || root["kind"].(string) != "stage" || root["spans"].(float64) == 0 {
		t.Fatalf("ingest-tweets root node missing or idle: %v", root)
	}
	if ds, ok := byName["docstore"]; !ok || ds["kind"].(string) != "backend" {
		t.Fatalf("docstore backend node missing: %v", byName)
	}
	// Edges carry the RED fields and are sorted by (from, to).
	edges := out["edges"].([]any)
	for _, e := range edges {
		row := e.(map[string]any)
		for _, key := range []string{"from", "to", "traversals", "errors", "ratePerTick"} {
			if _, ok := row[key]; !ok {
				t.Fatalf("edge row missing %q: %v", key, row)
			}
		}
	}
	for i := 1; i < len(edges); i++ {
		prev := edges[i-1].(map[string]any)
		cur := edges[i].(map[string]any)
		pk := prev["from"].(string) + "\x00" + prev["to"].(string)
		ck := cur["from"].(string) + "\x00" + cur["to"].(string)
		if ck < pk {
			t.Fatalf("edges not sorted: %q after %q", ck, pk)
		}
	}

	// ?limit= caps the edge list, totalEdges keeps the uncapped count.
	capped := getJSON(t, srv.URL+"/api/graph?limit=2", http.StatusOK)
	if n := len(capped["edges"].([]any)); n != 2 {
		t.Fatalf("capped edges = %d, want 2", n)
	}
	if capped["totalEdges"].(float64) != out["edgeCount"].(float64) {
		t.Fatalf("totalEdges = %v, want %v", capped["totalEdges"], out["edgeCount"])
	}
}

func TestIncidentsEndpoint(t *testing.T) {
	srv, inf := newTestServer(t)

	// Quiet system: no incidents yet.
	out := getJSON(t, srv.URL+"/api/incidents", http.StatusOK)
	if out["count"].(float64) != 0 || out["open"].(float64) != 0 {
		t.Fatalf("incidents on a healthy stack: %v", out)
	}

	// Hard docstore partition: tweet stores dead-letter, the delivery rule
	// trips, and the correlation engine opens an incident. The batch stays
	// small so retry backoff doesn't advance the simulated clock past the
	// rule's 15s rate window between scrapes.
	inf.EnableChaos(faults.NewInjector(faults.Config{
		Seed: 7, BlackoutEvery: 1, BlackoutLen: 1, TargetOps: []string{"store."},
	}))
	tweets := smallTweets(t, inf, 8, 11)
	for tick := 0; tick < 4; tick++ {
		if _, err := inf.IngestTweets(tweets); err != nil {
			t.Fatalf("ingest under store chaos: %v", err)
		}
		inf.MonitorTick()
	}
	inf.DisableChaos()

	out = getJSON(t, srv.URL+"/api/incidents", http.StatusOK)
	if out["opened"].(float64) == 0 {
		t.Fatalf("no incident opened under store chaos: %v", out)
	}
	incs := out["incidents"].([]any)
	if len(incs) == 0 {
		t.Fatalf("incident list empty: %v", out)
	}
	inc := incs[0].(map[string]any)
	for _, key := range []string{"id", "state", "openedTick", "rules", "suspects", "timeline"} {
		if _, ok := inc[key]; !ok {
			t.Fatalf("incident missing %q: %v", key, inc)
		}
	}
	suspects := inc["suspects"].([]any)
	if len(suspects) == 0 {
		t.Fatalf("incident carries no suspects: %v", inc)
	}
	if top := suspects[0].(map[string]any); top["component"].(string) != "docstore" {
		t.Fatalf("top suspect = %v, want docstore", top)
	}

	// ?limit= caps the listing.
	capped := getJSON(t, srv.URL+"/api/incidents?limit=1", http.StatusOK)
	if n := len(capped["incidents"].([]any)); n != 1 {
		t.Fatalf("capped incidents = %d, want 1", n)
	}
}

func TestEventsSinceCursor(t *testing.T) {
	srv, inf := newTestServer(t)
	inf.Events.Log("info", "test", "", "cursor probe one")
	inf.Events.Log("info", "test", "", "cursor probe two")

	// Cursor 0 pages everything retained, ascending.
	out := getJSON(t, srv.URL+"/api/events?since=0", http.StatusOK)
	evs := out["events"].([]any)
	if len(evs) < 2 {
		t.Fatalf("since=0 returned %d events", len(evs))
	}
	var prev float64
	for _, e := range evs {
		seq := e.(map[string]any)["seq"].(float64)
		if seq <= prev {
			t.Fatalf("cursor mode must be ascending: %v after %v", seq, prev)
		}
		prev = seq
	}
	if out["nextSince"].(float64) != prev {
		t.Fatalf("nextSince = %v, want last seq %v", out["nextSince"], prev)
	}

	// Resuming from the cursor returns only what was logged after it.
	cursor := int64(prev)
	inf.Events.Log("info", "test", "", "cursor probe three")
	out = getJSON(t, srv.URL+fmt.Sprintf("/api/events?since=%d", cursor), http.StatusOK)
	evs = out["events"].([]any)
	if len(evs) != 1 {
		t.Fatalf("incremental read = %d events, want 1: %v", len(evs), out)
	}
	if msg := evs[0].(map[string]any)["message"].(string); msg != "cursor probe three" {
		t.Fatalf("incremental event = %q", msg)
	}

	// A drained cursor returns an empty page and echoes itself.
	next := int64(out["nextSince"].(float64))
	out = getJSON(t, srv.URL+fmt.Sprintf("/api/events?since=%d", next), http.StatusOK)
	if out["count"].(float64) != 0 || int64(out["nextSince"].(float64)) != next {
		t.Fatalf("drained cursor: %v", out)
	}

	// ?limit= pages the ascending stream.
	out = getJSON(t, srv.URL+"/api/events?since=0&limit=1", http.StatusOK)
	if out["count"].(float64) != 1 {
		t.Fatalf("paged read: %v", out)
	}
}

// TestEventsSinceValidation pins the 400 contract for bad cursors.
func TestEventsSinceValidation(t *testing.T) {
	srv, _ := newTestServer(t)
	cases := []struct {
		since      string
		wantStatus int
	}{
		{"0", http.StatusOK},
		{"12", http.StatusOK},
		{"-1", http.StatusBadRequest},
		{"junk", http.StatusBadRequest},
		{"1.5", http.StatusBadRequest},
		{"+2x", http.StatusBadRequest},
		{"9999999999999999999999", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("since=%q", tc.since), func(t *testing.T) {
			out := getJSON(t, srv.URL+"/api/events?since="+tc.since, tc.wantStatus)
			if tc.wantStatus == http.StatusBadRequest && out["error"] == nil {
				t.Fatalf("400 body carries no error: %v", out)
			}
		})
	}
}

// TestIncidentReadDuringIngest hammers the incident and graph endpoints
// while an ingest/monitor loop mutates the engine — the race-mode guard
// matching the /api/profile pattern.
func TestIncidentReadDuringIngest(t *testing.T) {
	srv, inf := newTestServer(t)
	tcfg := citydata.DefaultTweetConfig(inf.Config().Epoch)
	tcfg.Count = 50
	tweets, err := citydata.GenerateTweets(tcfg, nil, inf.Gang, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, err := inf.IngestTweets(tweets); err != nil {
				panic(fmt.Sprintf("ingest during incident reads: %v", err))
			}
			inf.MonitorTick()
		}
	}()
	for i := 0; i < 10; i++ {
		getJSON(t, srv.URL+"/api/incidents", http.StatusOK)
		getJSON(t, srv.URL+"/api/graph", http.StatusOK)
		getJSON(t, srv.URL+"/api/events?since=0", http.StatusOK)
	}
	wg.Wait()
}
