package web

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"testing"

	"repro/internal/citydata"
	"repro/internal/core"
)

// smallTweets regenerates a fresh batch against the server's gang network,
// for tests that need traffic after boot.
func smallTweets(t *testing.T, inf *core.Infrastructure, n int, seed int64) []citydata.Tweet {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := inf.Config()
	incidents, err := citydata.GenerateCrimes(citydata.DefaultCrimeConfig(cfg.Epoch), inf.Gang.Nodes(), rng)
	if err != nil {
		t.Fatal(err)
	}
	tcfg := citydata.DefaultTweetConfig(cfg.Epoch)
	tcfg.Count = n
	tweets, err := citydata.GenerateTweets(tcfg, incidents, inf.Gang, rng)
	if err != nil {
		t.Fatal(err)
	}
	return tweets
}

func TestSeriesEndpoint(t *testing.T) {
	srv, inf := newTestServer(t)

	// Before any scrape the store is empty but the endpoint still answers.
	out := getJSON(t, srv.URL+"/api/series", http.StatusOK)
	if out["scrapes"].(float64) != 0 || out["count"].(float64) != 0 {
		t.Fatalf("pre-scrape inventory = %v", out)
	}

	inf.MonitorTick()
	inf.MonitorTick()
	out = getJSON(t, srv.URL+"/api/series", http.StatusOK)
	if out["scrapes"].(float64) != 2 {
		t.Fatalf("scrapes = %v", out["scrapes"])
	}
	series := out["series"].([]any)
	if len(series) == 0 {
		t.Fatal("no series after two scrapes")
	}
	names := make(map[string]map[string]any, len(series))
	for _, s := range series {
		m := s.(map[string]any)
		names[m["name"].(string)] = m
	}
	// The counter itself, a histogram-derived quantile series, and the
	// alert-engine gauge must all be retained.
	for _, want := range []string{
		"cityinfra_pipeline_collected_total",
		"cityinfra_pipeline_ingest_seconds_p99",
		"cityinfra_tsdb_alerts_firing",
	} {
		m, ok := names[want]
		if !ok {
			t.Fatalf("inventory missing %q", want)
		}
		if m["samples"].(float64) != 2 {
			t.Fatalf("%s samples = %v, want 2", want, m["samples"])
		}
	}
}

func TestQueryEndpoint(t *testing.T) {
	srv, inf := newTestServer(t)
	inf.MonitorTick()
	if _, err := inf.IngestTweets(smallTweets(t, inf, 50, 21)); err != nil {
		t.Fatal(err)
	}
	inf.MonitorTick()

	// Instant lookup returns the scraped counter value.
	out := getJSON(t, srv.URL+"/api/query?expr=cityinfra_pipeline_collected_total", http.StatusOK)
	if out["value"].(float64) < 350 { // 300 at boot + 50 here, plus crimes
		t.Fatalf("instant value = %v", out["value"])
	}
	if out["series"] != "cityinfra_pipeline_collected_total" || out["func"] != "" {
		t.Fatalf("instant query shape = %v", out)
	}

	// Windowed rate over the two scrapes sees the 50-tweet batch.
	out = getJSON(t, srv.URL+"/api/query?expr=rate(cityinfra_pipeline_collected_total[15s])", http.StatusOK)
	if out["func"] != "rate" || out["samples"].(float64) < 2 {
		t.Fatalf("rate query shape = %v", out)
	}
	if out["value"].(float64) <= 0 {
		t.Fatalf("rate = %v, want > 0 after ingesting between scrapes", out["value"])
	}

	// Error taxonomy: bad requests are 400, unknown/empty series are 404.
	for _, bad := range []string{
		"",               // missing expr
		"rate(foo[",      // unparseable
		"nope(foo[15s])", // unknown function
		"quantile_over_time(2, cityinfra_pipeline_collected_total[15s])", // q out of range
	} {
		getJSON(t, srv.URL+"/api/query?expr="+url.QueryEscape(bad), http.StatusBadRequest)
	}
	getJSON(t, srv.URL+"/api/query?expr=no_such_series", http.StatusNotFound)
	getJSON(t, srv.URL+"/api/query?expr="+url.QueryEscape("rate(no_such_series[15s])"), http.StatusNotFound)
}

func TestAlertingEndpoint(t *testing.T) {
	srv, inf := newTestServer(t)
	inf.MonitorTick()
	out := getJSON(t, srv.URL+"/api/alerting", http.StatusOK)
	if int(out["count"].(float64)) != len(core.DefaultAlertRules()) {
		t.Fatalf("rule count = %v, want %d", out["count"], len(core.DefaultAlertRules()))
	}
	if len(out["firing"].([]any)) != 0 {
		t.Fatalf("firing at boot = %v", out["firing"])
	}
	rules := out["rules"].([]any)
	seen := make(map[string]bool)
	for _, r := range rules {
		m := r.(map[string]any)
		seen[m["rule"].(map[string]any)["name"].(string)] = true
		if m["state"] != "inactive" {
			t.Fatalf("rule state at boot = %v", m)
		}
	}
	if !seen["ingest-delivery-rate"] {
		t.Fatalf("rules = %v", seen)
	}
}

// TestHealthDegradedWhenAlertFiring drives the shipped delivery-rate rule to
// firing through real traffic and checks /api/health flips to "degraded"
// while staying HTTP 200 (the process is up; the system is unhealthy).
func TestHealthDegradedWhenAlertFiring(t *testing.T) {
	srv, inf := newTestServer(t)
	tweets := smallTweets(t, inf, 30, 23)

	for i := 0; i < 3; i++ {
		if _, err := inf.IngestTweets(tweets); err != nil {
			t.Fatal(err)
		}
		inf.MonitorTick()
	}
	if out := getJSON(t, srv.URL+"/api/health", http.StatusOK); out["status"] != "ok" {
		t.Fatalf("healthy baseline = %v", out)
	}

	// Two poisoned ticks: breach → pending → firing.
	for i := 0; i < 2; i++ {
		if _, _, err := inf.Broker.Produce("tweets", "poison", []byte("{malformed")); err != nil {
			t.Fatal(err)
		}
		if _, err := inf.IngestTweets(tweets); err != nil {
			t.Fatal(err)
		}
		inf.MonitorTick()
	}

	out := getJSON(t, srv.URL+"/api/health", http.StatusOK)
	if out["status"] != "degraded" {
		t.Fatalf("health after firing alert = %v", out)
	}
	firing := out["alertsFiring"].([]any)
	if len(firing) != 1 || firing[0] != "ingest-delivery-rate" {
		t.Fatalf("alertsFiring = %v", firing)
	}
}

// TestLimitParamValidation pins the ?limit= contract on every listing
// endpoint: absent or positive integers work, zero/negative/non-numeric are
// rejected with 400.
func TestLimitParamValidation(t *testing.T) {
	srv, _ := newTestServer(t)
	endpoints := []string{"/api/traces", "/api/events", "/api/incidents", "/api/graph"}
	cases := []struct {
		limit      string
		wantStatus int
	}{
		{"", http.StatusOK},
		{"1", http.StatusOK},
		{"100", http.StatusOK},
		{"0", http.StatusBadRequest},
		{"-3", http.StatusBadRequest},
		{"junk", http.StatusBadRequest},
		{"1.5", http.StatusBadRequest},
		{"+2x", http.StatusBadRequest},
	}
	for _, ep := range endpoints {
		for _, tc := range cases {
			url := srv.URL + ep
			if tc.limit != "" {
				url += "?limit=" + tc.limit
			}
			t.Run(fmt.Sprintf("%s limit=%q", ep, tc.limit), func(t *testing.T) {
				out := getJSON(t, url, tc.wantStatus)
				if tc.wantStatus == http.StatusBadRequest && out["error"] == nil {
					t.Fatalf("400 body carries no error: %v", out)
				}
			})
		}
	}
}
