package web

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func TestTracesLimitNewestFirst(t *testing.T) {
	srv, inf := newTestServer(t)
	ids := inf.Tracer.IDs() // oldest first
	if len(ids) < 2 {
		t.Fatalf("need >= 2 traces, have %d", len(ids))
	}

	out := getJSON(t, srv.URL+"/api/traces?limit=1", http.StatusOK)
	if out["count"].(float64) != 1 {
		t.Fatalf("count = %v", out["count"])
	}
	if int(out["total"].(float64)) != len(ids) {
		t.Fatalf("total = %v, want %d", out["total"], len(ids))
	}
	got := out["traces"].([]any)
	if got[0].(string) != ids[len(ids)-1] {
		t.Fatalf("limit=1 returned %v, want the newest trace %s", got[0], ids[len(ids)-1])
	}

	// A limit beyond the retained count returns everything.
	out = getJSON(t, srv.URL+"/api/traces?limit=100000", http.StatusOK)
	if int(out["count"].(float64)) != len(ids) {
		t.Fatalf("over-limit count = %v", out["count"])
	}

	getJSON(t, srv.URL+"/api/traces?limit=0", http.StatusBadRequest)
	getJSON(t, srv.URL+"/api/traces?limit=junk", http.StatusBadRequest)
	getJSON(t, srv.URL+"/api/traces?limit=-3", http.StatusBadRequest)
}

func TestEventsEndpoint(t *testing.T) {
	srv, inf := newTestServer(t)
	inf.Events.Log(telemetry.LevelWarn, "breaker", "trace-9", "circuit breaker opened")
	inf.Events.Log(telemetry.LevelInfo, "healer", "", "repaired 2 replicas")

	out := getJSON(t, srv.URL+"/api/events?limit=2", http.StatusOK)
	if out["count"].(float64) != 2 {
		t.Fatalf("count = %v", out["count"])
	}
	if out["total"].(float64) < 2 {
		t.Fatalf("total = %v", out["total"])
	}
	evs := out["events"].([]any)
	// Newest first.
	first := evs[0].(map[string]any)
	second := evs[1].(map[string]any)
	if first["component"] != "healer" || second["component"] != "breaker" {
		t.Fatalf("event order = %v, %v", first, second)
	}
	if second["traceId"] != "trace-9" {
		t.Fatalf("trace id lost: %v", second)
	}

	getJSON(t, srv.URL+"/api/events?limit=nope", http.StatusBadRequest)
}

func TestSLOEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	out := getJSON(t, srv.URL+"/api/slo", http.StatusOK)
	if out["count"].(float64) != 2 {
		t.Fatalf("slo count = %v", out["count"])
	}
	names := make(map[string]bool)
	for _, raw := range out["slos"].([]any) {
		rep := raw.(map[string]any)
		names[rep["name"].(string)] = true
		if rep["objective"].(float64) <= 0 {
			t.Fatalf("objective = %v", rep)
		}
	}
	if !names["ingest-delivery"] || !names["ingest-latency-1s"] {
		t.Fatalf("objectives = %v", names)
	}
}

func TestRuntimeMetricsAndExemplarsExposed(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, family := range []string{
		"cityinfra_go_goroutines",
		"cityinfra_go_heap_alloc_bytes",
		"cityinfra_go_gc_pause_p99_seconds",
	} {
		if !strings.Contains(body, family) {
			t.Fatalf("/metrics missing runtime family %q", family)
		}
	}
	// The ingest histogram retained exemplars from the pipeline runs in
	// newTestServer; the exposition must link tail buckets to trace ids.
	if !strings.Contains(body, `# {trace_id="`) {
		t.Fatal("/metrics exposes no exemplar trailers")
	}
}

// The exemplar printed on /metrics must resolve through /api/trace/{id} — the
// dashboard's drill-down path from a tail bucket to a causal tree.
func TestExemplarResolvesToTrace(t *testing.T) {
	srv, inf := newTestServer(t)
	var exemplar string
	for _, p := range inf.Telemetry.Snapshot() {
		if p.Name == "cityinfra_pipeline_ingest_seconds" {
			exemplar = p.ExemplarTrace
		}
	}
	if exemplar == "" {
		t.Fatal("ingest histogram retained no exemplar")
	}
	tr := getJSON(t, srv.URL+"/api/trace/"+exemplar, http.StatusOK)
	if tr["trace"].(map[string]any)["id"] != exemplar {
		t.Fatalf("exemplar trace = %v", tr["trace"])
	}
}
