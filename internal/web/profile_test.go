package web

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"testing"

	"repro/internal/citydata"
)

func TestProfileEndpoint(t *testing.T) {
	srv, inf := newTestServer(t)
	// Close one attribution window so the hot ranking is populated.
	inf.MonitorTick()

	out := getJSON(t, srv.URL+"/api/profile", http.StatusOK)
	if out["total"].(float64) < 10 {
		t.Fatalf("total regions = %v, want the full instrumented set", out["total"])
	}
	if out["ticks"].(float64) != 1 {
		t.Fatalf("ticks = %v", out["ticks"])
	}
	regions := out["regions"].([]any)
	if len(regions) == 0 {
		t.Fatal("no regions")
	}
	// Default sort is self-seconds descending.
	first := regions[0].(map[string]any)
	second := regions[1].(map[string]any)
	if first["selfSeconds"].(float64) < second["selfSeconds"].(float64) {
		t.Fatalf("not sorted by self: %v then %v", first, second)
	}
	for _, key := range []string{"region", "calls", "cumSeconds", "selfSeconds", "allocBytes", "allocsPerOp"} {
		if _, ok := first[key]; !ok {
			t.Fatalf("region row missing %q: %v", key, first)
		}
	}
	// The ingest root did real work during boot-time ingestion.
	byName := map[string]map[string]any{}
	for _, r := range regions {
		row := r.(map[string]any)
		byName[row["region"].(string)] = row
	}
	if ing, ok := byName["ingest"]; !ok || ing["calls"].(float64) == 0 {
		t.Fatalf("ingest region absent or idle: %v", byName["ingest"])
	}

	// The hot ranking mirrors the last tick's window.
	hot := out["hot"].([]any)
	if len(hot) == 0 {
		t.Fatal("no hot regions after a tick with ingest traffic")
	}
}

func TestProfileEndpointSortAndLimit(t *testing.T) {
	srv, _ := newTestServer(t)

	limited := getJSON(t, srv.URL+"/api/profile?limit=3", http.StatusOK)
	if n := len(limited["regions"].([]any)); n != 3 {
		t.Fatalf("limited regions = %d, want 3", n)
	}
	if limited["total"].(float64) < 4 {
		t.Fatalf("total = %v, want > limit", limited["total"])
	}

	byCum := getJSON(t, srv.URL+"/api/profile?sort=cum", http.StatusOK)
	regions := byCum["regions"].([]any)
	for i := 1; i < len(regions); i++ {
		prev := regions[i-1].(map[string]any)["cumSeconds"].(float64)
		cur := regions[i].(map[string]any)["cumSeconds"].(float64)
		if cur > prev {
			t.Fatalf("sort=cum out of order at %d: %v > %v", i, cur, prev)
		}
	}
	byAllocs := getJSON(t, srv.URL+"/api/profile?sort=allocs", http.StatusOK)
	if byAllocs["sort"] != "allocs" {
		t.Fatalf("sort echo = %v", byAllocs["sort"])
	}

	// Parameter validation, mirroring /api/traces.
	for _, bad := range []string{
		"/api/profile?limit=0",
		"/api/profile?limit=-2",
		"/api/profile?limit=abc",
		"/api/profile?sort=wall",
		"/api/profile?sort=SELF",
	} {
		out := getJSON(t, srv.URL+bad, http.StatusBadRequest)
		if out["error"] == "" {
			t.Fatalf("%s: no error body", bad)
		}
	}
}

func TestProfileFlameEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	out := getJSON(t, srv.URL+"/api/profile/flame", http.StatusOK)
	roots := out["roots"].([]any)
	if len(roots) == 0 {
		t.Fatal("no flame roots")
	}
	if out["nodes"].(float64) < float64(len(roots)) {
		t.Fatalf("nodes = %v < roots = %d", out["nodes"], len(roots))
	}
	// The broker root must exist and nest append above replicate — the
	// region-tree shape the flame view renders.
	var broker map[string]any
	for _, r := range roots {
		if node := r.(map[string]any); node["path"] == "broker" {
			broker = node
		}
	}
	if broker == nil {
		t.Fatalf("no broker root in %v", roots)
	}
	children := broker["children"].([]any)
	appendNode := children[0].(map[string]any)
	if appendNode["path"] != "broker/append" {
		t.Fatalf("broker child = %v", appendNode["path"])
	}
	grand := appendNode["children"].([]any)
	if grand[0].(map[string]any)["path"] != "broker/append/replicate" {
		t.Fatalf("append child = %v", grand[0])
	}
}

// Profile reads must be safe while ingest traffic is recording spans — the
// race detector drives this test's value.
func TestProfileReadDuringIngest(t *testing.T) {
	srv, inf := newTestServer(t)
	tcfg := citydata.DefaultTweetConfig(inf.Config().Epoch)
	tcfg.Count = 50
	rngTweets, err := citydata.GenerateTweets(tcfg, nil, inf.Gang, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, err := inf.IngestTweets(rngTweets); err != nil {
				panic(fmt.Sprintf("ingest during profile reads: %v", err))
			}
			inf.MonitorTick()
		}
	}()
	for i := 0; i < 10; i++ {
		getJSON(t, srv.URL+"/api/profile", http.StatusOK)
		getJSON(t, srv.URL+"/api/profile/flame", http.StatusOK)
	}
	wg.Wait()
}
