// Package web implements the Fig. 4 web/visualization tier: an HTTP server
// exposing the cyberinfrastructure's stores and analysis results as JSON —
// "the result of inference will be sent to the web server to be visualized
// on our website". Endpoints cover the layer inventory, geo-time tweet
// queries, district crime lookups, camera search, the operator alert feed,
// and the §IV.B narrowing funnel.
package web

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/profile"
	"repro/internal/tsdb"
)

// ErrBadRequest marks client-side parameter errors.
var ErrBadRequest = errors.New("web: bad request")

// Server serves the dashboard API for one infrastructure.
type Server struct {
	inf *core.Infrastructure
	mux *http.ServeMux
}

var _ http.Handler = (*Server)(nil)

// NewServer builds the handler. It does not listen; mount it on any
// http.Server (or httptest).
func NewServer(inf *core.Infrastructure) *Server {
	s := &Server{inf: inf, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /api/inventory", s.handleInventory)
	s.mux.HandleFunc("GET /api/tweets/near", s.handleTweetsNear)
	s.mux.HandleFunc("GET /api/crimes/district/{id}", s.handleCrimesDistrict)
	s.mux.HandleFunc("GET /api/cameras/near", s.handleCamerasNear)
	s.mux.HandleFunc("GET /api/cameras", s.handleCameras)
	s.mux.HandleFunc("GET /api/alerts", s.handleAlerts)
	s.mux.HandleFunc("GET /api/health", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /api/traces", s.handleTraces)
	s.mux.HandleFunc("GET /api/trace/{id}", s.handleTrace)
	s.mux.HandleFunc("GET /api/events", s.handleEvents)
	s.mux.HandleFunc("GET /api/slo", s.handleSLO)
	s.mux.HandleFunc("GET /api/query", s.handleQuery)
	s.mux.HandleFunc("GET /api/series", s.handleSeries)
	s.mux.HandleFunc("GET /api/alerting", s.handleAlerting)
	s.mux.HandleFunc("GET /api/cluster", s.handleCluster)
	s.mux.HandleFunc("GET /api/control", s.handleControl)
	s.mux.HandleFunc("GET /api/profile", s.handleProfile)
	s.mux.HandleFunc("GET /api/profile/flame", s.handleProfileFlame)
	s.mux.HandleFunc("GET /api/incidents", s.handleIncidents)
	s.mux.HandleFunc("GET /api/graph", s.handleGraph)
	s.registerRuntimeMetrics()
	return s
}

// memStatsCache shares one runtime.ReadMemStats snapshot between all the
// gauge callbacks of a single scrape. ReadMemStats is a stop-the-world
// operation, so reading it once per gauge would multiply the pause by the
// number of memory gauges; the short wall-clock TTL spans one registry
// snapshot but not two scrape ticks.
type memStatsCache struct {
	mu sync.Mutex
	at time.Time
	m  runtime.MemStats
}

func (c *memStatsCache) snapshot() runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.at.IsZero() || time.Since(c.at) > 50*time.Millisecond {
		runtime.ReadMemStats(&c.m)
		c.at = time.Now()
	}
	return c.m
}

// registerRuntimeMetrics exposes the serving process's own Go runtime health
// on /metrics next to the infrastructure families: goroutine count, live heap
// bytes, and a p99 over the GC pause ring. The heap and GC gauges share one
// MemStats snapshot per scrape.
func (s *Server) registerRuntimeMetrics() {
	r := s.inf.Telemetry
	cache := &memStatsCache{}
	r.GaugeFunc("cityinfra_go_goroutines", "goroutines currently live",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("cityinfra_go_heap_alloc_bytes", "bytes of allocated heap objects",
		func() float64 {
			m := cache.snapshot()
			return float64(m.HeapAlloc)
		})
	r.GaugeFunc("cityinfra_go_gc_pause_p99_seconds", "p99 of the runtime's recent GC pause ring",
		func() float64 {
			m := cache.snapshot()
			n := int(m.NumGC)
			if n == 0 {
				return 0
			}
			if n > len(m.PauseNs) {
				n = len(m.PauseNs)
			}
			pauses := make([]uint64, n)
			copy(pauses, m.PauseNs[:n])
			sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
			return float64(pauses[(n-1)*99/100]) / 1e9
		})
}

// ServeHTTP dispatches to the API mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// handleHealth is the one probe-able health signal for orchestrators. It
// stays HTTP 200 either way but reports "degraded" when any SLO is burning
// its error budget faster than the objective allows (burn rate > 1.0) or
// any alert rule is firing, with the offenders named.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.inf.HDFS.Status()
	status := "ok"
	burning := []string{} // non-nil so the JSON field is always an array
	maxBurn := 0.0
	for _, rep := range s.inf.SLOs.Reports() {
		if rep.BurnRate > maxBurn {
			maxBurn = rep.BurnRate
		}
		if rep.BurnRate > 1.0 {
			burning = append(burning, rep.Name)
		}
	}
	firing := s.inf.Alerts.Firing()
	if firing == nil {
		firing = []string{}
	}
	if len(burning) > 0 || len(firing) > 0 {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":          status,
		"sloMaxBurnRate":  maxBurn,
		"slosBurning":     burning,
		"alertsFiring":    firing,
		"hdfsLiveNodes":   st.LiveNodes,
		"hdfsLostBlocks":  st.LostBlocks,
		"brokerTopics":    s.inf.Broker.Topics(),
		"brokerNodesUp":   s.inf.Broker.NodesUp(),
		"brokerUnderRepl": s.inf.Broker.UnderReplicated(),
		"camerasDeployed": len(s.inf.Cameras),
	})
}

func (s *Server) handleInventory(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.inf.Inventory())
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.inf.Telemetry.WritePrometheus(w); err != nil {
		// Headers are gone; all we can do is drop the connection mid-body.
		return
	}
}

// parseLimit reads an optional ?limit= query parameter (0 means unlimited).
func parseLimit(r *http.Request) (int, error) {
	v := r.URL.Query().Get("limit")
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("%w: limit", ErrBadRequest)
	}
	return n, nil
}

// handleTraces lists the retained trace ids, newest first; ?limit= caps the
// listing. total is the retained count before the cap.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	limit, err := parseLimit(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ids := s.inf.Tracer.IDs()
	for i, j := 0, len(ids)-1; i < j; i, j = i+1, j-1 {
		ids[i], ids[j] = ids[j], ids[i]
	}
	total := len(ids)
	if limit > 0 && limit < len(ids) {
		ids = ids[:limit]
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(ids), "total": total, "traces": ids})
}

// handleEvents serves the operational event log. Without ?since= it returns
// the retained ring newest first. With ?since=<seq> it switches to cursor
// mode: events with Seq > since, oldest first, capped at ?limit= — and the
// response carries nextSince (the last Seq returned, or the cursor itself
// when nothing new) so pollers read incrementally instead of re-fetching
// the ring.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	limit, err := parseLimit(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if v := r.URL.Query().Get("since"); v != "" {
		since, err := strconv.ParseInt(v, 10, 64)
		if err != nil || since < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("%w: since", ErrBadRequest))
			return
		}
		evs := s.inf.Events.EventsSince(since, limit)
		next := since
		if len(evs) > 0 {
			next = evs[len(evs)-1].Seq
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"count": len(evs), "total": s.inf.Events.Total(),
			"nextSince": next, "events": evs,
		})
		return
	}
	evs := s.inf.Events.Events(limit)
	writeJSON(w, http.StatusOK, map[string]any{
		"count": len(evs), "total": s.inf.Events.Total(), "events": evs,
	})
}

// handleCluster serves the replicated broker's full state: node liveness,
// per-partition leadership/epoch/ISR/high-watermark, and the election and
// replication counters — the operator's view of whether the streaming spine
// can lose a node right now without losing data.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	st := s.inf.Broker.State()
	writeJSON(w, http.StatusOK, map[string]any{
		"nodes":           st.Nodes,
		"partitions":      st.Partitions,
		"underReplicated": st.UnderReplicated,
		"leaderless":      st.Leaderless,
		"stats":           st.Stats,
	})
}

// handleControl serves the adaptive controller's snapshot: the health
// verdict and streaks, every live knob, per-kind action totals, and the
// retained action history (?limit= caps the returned actions, newest kept).
func (s *Server) handleControl(w http.ResponseWriter, r *http.Request) {
	limit, err := parseLimit(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st := s.inf.Control.Status()
	if limit > 0 && len(st.Actions) > limit {
		st.Actions = st.Actions[len(st.Actions)-limit:]
	}
	writeJSON(w, http.StatusOK, st)
}

// handleSLO serves every objective's windowed burn math.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	reps := s.inf.SLOs.Reports()
	writeJSON(w, http.StatusOK, map[string]any{"count": len(reps), "slos": reps})
}

// handleQuery evaluates one windowed expression against the time-series
// store at its current clock reading: rate(), delta(), avg/min/max_over_time,
// quantile_over_time, a selector (`name` or `name{camera="cam-7"}`) for an
// instant lookup, or a sum/avg/min/max aggregation (optionally `by (label)`).
// A single-valued answer keeps the historical one-object shape; a selector or
// grouped aggregation matching several series returns a vector.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	expr := r.URL.Query().Get("expr")
	if expr == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: missing expr", ErrBadRequest))
		return
	}
	vals, err := s.inf.TSDB.EvalAll(expr, s.inf.TSDB.Now())
	switch {
	case errors.Is(err, tsdb.ErrUnknownSeries), errors.Is(err, tsdb.ErrNoSamples):
		writeError(w, http.StatusNotFound, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	if len(vals) == 1 {
		writeJSON(w, http.StatusOK, vals[0])
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"expr": expr, "count": len(vals), "values": vals,
	})
}

// handleCameras serves the fleet table: one row per camera the frame path
// has ever seen (exact counts survive top-K rollup), the windowed rate/burn
// accounting, and the cardinality summary proving the registry footprint
// stays bounded. ?sort=burn switches from id order to hottest-first (only
// cameras with signal); ?limit= caps the rows either way.
func (s *Server) handleCameras(w http.ResponseWriter, r *http.Request) {
	fl := s.inf.Fleet
	if fl == nil {
		writeError(w, http.StatusNotFound, errors.New("web: fleet telemetry disabled"))
		return
	}
	limit, err := parseLimit(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var rows []core.CameraStatus
	switch sortKey := r.URL.Query().Get("sort"); sortKey {
	case "", "id":
		rows = fl.Report()
	case "burn":
		rows = fl.TopBurning(limit)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: sort must be id or burn", ErrBadRequest))
		return
	}
	total := len(rows)
	if limit > 0 && limit < len(rows) {
		rows = rows[:limit]
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count": len(rows), "total": total,
		"summary": fl.Summary(), "cameras": rows,
	})
}

// handleSeries lists the store's retained series inventory.
func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	inv := s.inf.TSDB.Inventory()
	writeJSON(w, http.StatusOK, map[string]any{
		"count": len(inv), "scrapes": s.inf.TSDB.Scrapes(), "series": inv,
	})
}

// handleProfile serves the continuous profiler's region table: cumulative
// and self seconds, calls, and sampled allocation rates per region, plus the
// last tick's hot-region ranking (the same ranking the watch dashboard and
// the cityinfra_profile_hot_region_* series report). ?limit= caps both
// listings; ?sort=self|cum|allocs orders the region table (default self).
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	limit, err := parseLimit(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sortKey := r.URL.Query().Get("sort")
	if sortKey == "" {
		sortKey = "self"
	}
	var less func(a, b profile.RegionStat) bool
	switch sortKey {
	case "self":
		less = func(a, b profile.RegionStat) bool { return a.SelfSeconds > b.SelfSeconds }
	case "cum":
		less = func(a, b profile.RegionStat) bool { return a.CumSeconds > b.CumSeconds }
	case "allocs":
		less = func(a, b profile.RegionStat) bool { return a.AllocBytes > b.AllocBytes }
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: sort must be self, cum, or allocs", ErrBadRequest))
		return
	}
	p := s.inf.Profiler
	regions := p.Snapshot()
	sort.SliceStable(regions, func(i, j int) bool { return less(regions[i], regions[j]) })
	total := len(regions)
	if limit > 0 && limit < len(regions) {
		regions = regions[:limit]
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":   len(regions),
		"total":   total,
		"ticks":   p.Ticks(),
		"sort":    sortKey,
		"regions": regions,
		"hot":     p.HotRegions(limit),
	})
}

// handleProfileFlame serves the region tree as nested flame-view JSON:
// children within parents, hottest-first, with synthesized connector nodes
// marked.
func (s *Server) handleProfileFlame(w http.ResponseWriter, r *http.Request) {
	roots := s.inf.Profiler.Flame()
	n := 0
	var count func(nodes []*profile.FlameNode)
	count = func(nodes []*profile.FlameNode) {
		for _, node := range nodes {
			n++
			count(node.Children)
		}
	}
	count(roots)
	writeJSON(w, http.StatusOK, map[string]any{"nodes": n, "roots": roots})
}

// handleAlerting serves the alert engine's rule states — the declarative
// rule feed, distinct from the operator alert queue at /api/alerts.
func (s *Server) handleAlerting(w http.ResponseWriter, r *http.Request) {
	states := s.inf.Alerts.States()
	firing := s.inf.Alerts.Firing()
	if firing == nil {
		firing = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count": len(states), "firing": firing, "rules": states,
	})
}

// handleTrace serves one trace's spans plus its per-stage latency breakdown.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tv, err := s.inf.Tracer.Trace(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"trace": tv, "breakdown": tv.Breakdown()})
}

// parseLatLon reads lat/lon query params.
func parseLatLon(r *http.Request) (geo.Point, error) {
	lat, err := strconv.ParseFloat(r.URL.Query().Get("lat"), 64)
	if err != nil {
		return geo.Point{}, fmt.Errorf("%w: lat: %v", ErrBadRequest, err)
	}
	lon, err := strconv.ParseFloat(r.URL.Query().Get("lon"), 64)
	if err != nil {
		return geo.Point{}, fmt.Errorf("%w: lon: %v", ErrBadRequest, err)
	}
	p := geo.Point{Lat: lat, Lon: lon}
	if err := p.Validate(); err != nil {
		return geo.Point{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return p, nil
}

func (s *Server) handleTweetsNear(w http.ResponseWriter, r *http.Request) {
	center, err := parseLatLon(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	radius, err := strconv.ParseFloat(r.URL.Query().Get("radiusKm"), 64)
	if err != nil || radius <= 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: radiusKm", ErrBadRequest))
		return
	}
	// Default window: everything.
	from := time.Unix(0, 0)
	to := time.Unix(1<<40, 0)
	if v := r.URL.Query().Get("fromUnix"); v != "" {
		sec, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("%w: fromUnix", ErrBadRequest))
			return
		}
		from = time.Unix(sec, 0)
	}
	if v := r.URL.Query().Get("toUnix"); v != "" {
		sec, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("%w: toUnix", ErrBadRequest))
			return
		}
		to = time.Unix(sec, 0)
	}
	docs, err := s.inf.TweetsNear(center, radius, from, to)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(docs), "tweets": docs})
}

func (s *Server) handleCrimesDistrict(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 1 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: district id", ErrBadRequest))
		return
	}
	rows, err := s.inf.CrimesInDistrict(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"district": id, "count": len(rows), "rows": rows})
}

func (s *Server) handleCamerasNear(w http.ResponseWriter, r *http.Request) {
	center, err := parseLatLon(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	radius, err := strconv.ParseFloat(r.URL.Query().Get("radiusKm"), 64)
	if err != nil || radius <= 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: radiusKm", ErrBadRequest))
		return
	}
	type camOut struct {
		ID         string  `json:"id"`
		Corridor   string  `json:"corridor"`
		DistanceKm float64 `json:"distanceKm"`
	}
	var out []camOut
	for _, n := range s.inf.CamIndex.QueryRadius(center, radius) {
		out = append(out, camOut{ID: n.Value.ID, Corridor: n.Value.Corridor, DistanceKm: n.DistanceKm})
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(out), "cameras": out})
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	max := 100
	if v := r.URL.Query().Get("max"); v != "" {
		m, err := strconv.Atoi(v)
		if err != nil || m < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("%w: max", ErrBadRequest))
			return
		}
		max = m
	}
	alerts, err := s.inf.PendingAlerts(max)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(alerts), "alerts": alerts})
}
