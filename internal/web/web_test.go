package web

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/citydata"
	"repro/internal/core"
)

func newTestServer(t *testing.T) (*httptest.Server, *core.Infrastructure) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Cameras = 30
	cfg.Gang.Members = 100
	cfg.Gang.Groups = 10
	inf, err := core.New(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	incidents, err := citydata.GenerateCrimes(citydata.DefaultCrimeConfig(cfg.Epoch), inf.Gang.Nodes(), rng)
	if err != nil {
		t.Fatal(err)
	}
	tcfg := citydata.DefaultTweetConfig(cfg.Epoch)
	tcfg.Count = 300
	tweets, err := citydata.GenerateTweets(tcfg, incidents, inf.Gang, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inf.IngestTweets(tweets); err != nil {
		t.Fatal(err)
	}
	if _, err := inf.IngestCrimes(incidents, ""); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(inf))
	t.Cleanup(srv.Close)
	return srv, inf
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestHealthEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	out := getJSON(t, srv.URL+"/api/health", http.StatusOK)
	if out["status"] != "ok" {
		t.Fatalf("health = %v", out)
	}
	if out["camerasDeployed"].(float64) != 30 {
		t.Fatalf("cameras = %v", out["camerasDeployed"])
	}
}

func TestInventoryEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/api/inventory")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var layers []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&layers); err != nil {
		t.Fatal(err)
	}
	if len(layers) != 4 {
		t.Fatalf("layers = %d", len(layers))
	}
}

func TestTweetsNearEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	url := srv.URL + "/api/tweets/near?lat=30.4515&lon=-91.1871&radiusKm=50"
	out := getJSON(t, url, http.StatusOK)
	if out["count"].(float64) == 0 {
		t.Fatal("no tweets near Baton Rouge")
	}
	// Parameter validation.
	getJSON(t, srv.URL+"/api/tweets/near?lat=abc&lon=-91&radiusKm=5", http.StatusBadRequest)
	getJSON(t, srv.URL+"/api/tweets/near?lat=30&lon=-91", http.StatusBadRequest)
	getJSON(t, srv.URL+"/api/tweets/near?lat=99&lon=-91&radiusKm=5", http.StatusBadRequest)
	getJSON(t, srv.URL+"/api/tweets/near?lat=30&lon=-91&radiusKm=5&fromUnix=zzz", http.StatusBadRequest)
}

func TestCrimesDistrictEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	total := 0
	for d := 1; d <= 12; d++ {
		out := getJSON(t, fmt.Sprintf("%s/api/crimes/district/%d", srv.URL, d), http.StatusOK)
		total += int(out["count"].(float64))
	}
	if total != 300 {
		t.Fatalf("district totals = %d", total)
	}
	getJSON(t, srv.URL+"/api/crimes/district/zero", http.StatusBadRequest)
	getJSON(t, srv.URL+"/api/crimes/district/0", http.StatusBadRequest)
}

func TestCamerasNearEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	out := getJSON(t, srv.URL+"/api/cameras/near?lat=30.4515&lon=-91.1871&radiusKm=100", http.StatusOK)
	if out["count"].(float64) == 0 {
		t.Fatal("no cameras near Baton Rouge")
	}
}

func TestAlertsEndpoint(t *testing.T) {
	srv, inf := newTestServer(t)
	// Inject alerts straight onto the topic.
	for i := 0; i < 3; i++ {
		body := fmt.Sprintf(`{"cameraId":"cam-%d","clipId":%d,"action":"fight","exit":"local"}`, i, i)
		if _, _, err := inf.Broker.Produce("alerts", "cam", []byte(body)); err != nil {
			t.Fatal(err)
		}
	}
	out := getJSON(t, srv.URL+"/api/alerts", http.StatusOK)
	if out["count"].(float64) != 3 {
		t.Fatalf("alerts = %v", out["count"])
	}
	// Second read drains nothing (consumer group committed).
	out2 := getJSON(t, srv.URL+"/api/alerts", http.StatusOK)
	if out2["count"].(float64) != 0 {
		t.Fatalf("alerts re-read = %v", out2["count"])
	}
	getJSON(t, srv.URL+"/api/alerts?max=junk", http.StatusBadRequest)
}

func TestUnknownRouteIs404(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/api/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	// The scrape must cover every instrumented subsystem: broker, flume,
	// hdfs, hbase, retry/breaker, and the pipeline itself.
	for _, family := range []string{
		"cityinfra_broker_produce_total",
		"cityinfra_flume_batch_seconds",
		"cityinfra_hdfs_live_datanodes",
		"cityinfra_hbase_flushes_total",
		"cityinfra_retry_retries_total",
		"cityinfra_breaker_state",
		"cityinfra_pipeline_ingest_seconds",
	} {
		if !strings.Contains(body, family) {
			t.Fatalf("/metrics missing %q:\n%s", family, body)
		}
	}
	if !strings.Contains(body, "# TYPE cityinfra_pipeline_ingest_seconds histogram") {
		t.Fatal("/metrics missing histogram TYPE line")
	}
}

func TestTraceEndpoints(t *testing.T) {
	srv, _ := newTestServer(t)
	out := getJSON(t, srv.URL+"/api/traces", http.StatusOK)
	if out["count"].(float64) < 1 {
		t.Fatalf("traces = %v", out)
	}
	ids := out["traces"].([]any)
	id := ids[len(ids)-1].(string)

	tr := getJSON(t, srv.URL+"/api/trace/"+id, http.StatusOK)
	trace := tr["trace"].(map[string]any)
	if trace["id"] != id {
		t.Fatalf("trace id = %v, want %s", trace["id"], id)
	}
	if len(trace["spans"].([]any)) < 2 {
		t.Fatalf("trace has %d spans, want root + stages", len(trace["spans"].([]any)))
	}
	if len(tr["breakdown"].([]any)) < 1 {
		t.Fatalf("breakdown = %v", tr["breakdown"])
	}

	getJSON(t, srv.URL+"/api/trace/nope", http.StatusNotFound)
}

func TestClusterEndpoint(t *testing.T) {
	srv, inf := newTestServer(t)
	out := getJSON(t, srv.URL+"/api/cluster", http.StatusOK)

	nodes := out["nodes"].([]any)
	if len(nodes) != inf.Broker.NodeCount() {
		t.Fatalf("nodes = %d, want %d", len(nodes), inf.Broker.NodeCount())
	}
	for _, n := range nodes {
		if !n.(map[string]any)["up"].(bool) {
			t.Fatalf("healthy boot reports a down node: %v", n)
		}
	}
	parts := out["partitions"].([]any)
	if len(parts) == 0 {
		t.Fatal("no partitions reported")
	}
	p0 := parts[0].(map[string]any)
	if p0["leader"].(float64) < 0 || p0["epoch"].(float64) < 1 {
		t.Fatalf("partition state = %v", p0)
	}
	if len(p0["isr"].([]any)) != len(p0["replicas"].([]any)) {
		t.Fatalf("healthy boot is under-replicated: %v", p0)
	}
	if out["underReplicated"].(float64) != 0 || out["leaderless"].(float64) != 0 {
		t.Fatalf("healthy boot degraded: %v", out)
	}

	// Crash a leader: the endpoint must show the leaderless partition, and
	// after one monitor tick the re-election with a bumped epoch.
	victim := int(p0["leader"].(float64))
	if err := inf.Broker.CrashNode(victim); err != nil {
		t.Fatal(err)
	}
	out = getJSON(t, srv.URL+"/api/cluster", http.StatusOK)
	if out["leaderless"].(float64) < 1 {
		t.Fatalf("crash not visible: %v", out["leaderless"])
	}
	inf.MonitorTick()
	out = getJSON(t, srv.URL+"/api/cluster", http.StatusOK)
	if out["leaderless"].(float64) != 0 {
		t.Fatalf("election did not complete in one tick: %v", out["leaderless"])
	}
	if out["stats"].(map[string]any)["Elections"].(float64) < 1 {
		t.Fatalf("stats = %v", out["stats"])
	}
}
