// Package yarn simulates a YARN-style cluster resource manager: node
// managers advertise capacity, applications request containers, and a
// capacity scheduler grants them with per-queue weighted fair sharing. The
// dataproc engine (the Spark analog) acquires containers from this package
// for its task slots, mirroring the paper's "Apache Hadoop YARN ... as the
// resource scheduler".
package yarn

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Sentinel errors.
var (
	ErrNoNode        = errors.New("yarn: node not found")
	ErrNodeExists    = errors.New("yarn: node already registered")
	ErrNoApplication = errors.New("yarn: application not found")
	ErrNoContainer   = errors.New("yarn: container not found")
	ErrNoQueue       = errors.New("yarn: queue not found")
	ErrOverCapacity  = errors.New("yarn: request exceeds total cluster capacity")
)

// Resources describes cores and memory.
type Resources struct {
	Cores int
	MemMB int
}

// fits reports whether r fits into free.
func (r Resources) fits(free Resources) bool {
	return r.Cores <= free.Cores && r.MemMB <= free.MemMB
}

type node struct {
	id    string
	total Resources
	used  Resources
}

func (n *node) free() Resources {
	return Resources{Cores: n.total.Cores - n.used.Cores, MemMB: n.total.MemMB - n.used.MemMB}
}

// ApplicationID identifies a submitted application.
type ApplicationID int64

// ContainerID identifies a granted container.
type ContainerID int64

// Container is a granted resource lease on a node.
type Container struct {
	ID     ContainerID
	App    ApplicationID
	NodeID string
	Res    Resources
}

type application struct {
	id    ApplicationID
	name  string
	queue string
	used  Resources
}

type pendingRequest struct {
	app ApplicationID
	res Resources
	ch  chan<- ContainerID // nil for polling-style requests
	seq int64
}

type queue struct {
	name    string
	weight  float64
	used    Resources
	pending []pendingRequest
}

// ResourceManager is the cluster scheduler. Safe for concurrent use.
type ResourceManager struct {
	mu         sync.Mutex
	nodes      map[string]*node
	queues     map[string]*queue
	apps       map[ApplicationID]*application
	containers map[ContainerID]*Container
	nextApp    ApplicationID
	nextCont   ContainerID
	nextSeq    int64
}

// NewResourceManager creates a manager with a single default queue of
// weight 1.
func NewResourceManager() *ResourceManager {
	rm := &ResourceManager{
		nodes:      make(map[string]*node),
		queues:     make(map[string]*queue),
		apps:       make(map[ApplicationID]*application),
		containers: make(map[ContainerID]*Container),
	}
	rm.queues["default"] = &queue{name: "default", weight: 1}
	return rm
}

// AddQueue registers a scheduling queue with a fair-share weight.
func (rm *ResourceManager) AddQueue(name string, weight float64) error {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if weight <= 0 {
		return fmt.Errorf("%w: weight %g", ErrNoQueue, weight)
	}
	rm.queues[name] = &queue{name: name, weight: weight}
	return nil
}

// AddNode registers a node manager with its capacity.
func (rm *ResourceManager) AddNode(id string, res Resources) error {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if _, ok := rm.nodes[id]; ok {
		return fmt.Errorf("%w: %s", ErrNodeExists, id)
	}
	rm.nodes[id] = &node{id: id, total: res}
	return nil
}

// TotalCapacity sums capacity across nodes.
func (rm *ResourceManager) TotalCapacity() Resources {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	var t Resources
	for _, n := range rm.nodes {
		t.Cores += n.total.Cores
		t.MemMB += n.total.MemMB
	}
	return t
}

// Submit registers an application on a queue and returns its id.
func (rm *ResourceManager) Submit(name, queueName string) (ApplicationID, error) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if _, ok := rm.queues[queueName]; !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoQueue, queueName)
	}
	rm.nextApp++
	id := rm.nextApp
	rm.apps[id] = &application{id: id, name: name, queue: queueName}
	return id, nil
}

// Request asks for one container. If resources are free it is granted
// immediately; otherwise it is queued and granted by a later Release. The
// returned channel receives the container id exactly once.
func (rm *ResourceManager) Request(app ApplicationID, res Resources) (<-chan ContainerID, error) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	a, ok := rm.apps[app]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoApplication, app)
	}
	total := Resources{}
	for _, n := range rm.nodes {
		total.Cores += n.total.Cores
		total.MemMB += n.total.MemMB
	}
	if res.Cores > maxNodeCores(rm.nodes) || res.MemMB > maxNodeMem(rm.nodes) {
		return nil, fmt.Errorf("%w: %+v", ErrOverCapacity, res)
	}
	ch := make(chan ContainerID, 1)
	rm.nextSeq++
	q := rm.queues[a.queue]
	q.pending = append(q.pending, pendingRequest{app: app, res: res, ch: ch, seq: rm.nextSeq})
	rm.scheduleLocked()
	return ch, nil
}

func maxNodeCores(nodes map[string]*node) int {
	m := 0
	for _, n := range nodes {
		if n.total.Cores > m {
			m = n.total.Cores
		}
	}
	return m
}

func maxNodeMem(nodes map[string]*node) int {
	m := 0
	for _, n := range nodes {
		if n.total.MemMB > m {
			m = n.total.MemMB
		}
	}
	return m
}

// scheduleLocked grants pending requests. Queues are served most-starved
// first (lowest used-cores/weight ratio); requests within a queue are FIFO.
func (rm *ResourceManager) scheduleLocked() {
	for {
		// Pick the most-starved queue with pending work.
		var best *queue
		var bestRatio float64
		for _, q := range rm.queues {
			if len(q.pending) == 0 {
				continue
			}
			ratio := float64(q.used.Cores) / q.weight
			if best == nil || ratio < bestRatio {
				best, bestRatio = q, ratio
			}
		}
		if best == nil {
			return
		}
		req := best.pending[0]
		n := rm.findNodeFor(req.res)
		if n == nil {
			// Head-of-line blocks this queue; try other queues' heads.
			granted := false
			queues := rm.sortedQueues()
			for _, q := range queues {
				if q == best || len(q.pending) == 0 {
					continue
				}
				if node := rm.findNodeFor(q.pending[0].res); node != nil {
					rm.grantLocked(q, node)
					granted = true
					break
				}
			}
			if !granted {
				return
			}
			continue
		}
		rm.grantLocked(best, n)
	}
}

func (rm *ResourceManager) sortedQueues() []*queue {
	qs := make([]*queue, 0, len(rm.queues))
	for _, q := range rm.queues {
		qs = append(qs, q)
	}
	sort.Slice(qs, func(i, j int) bool {
		return float64(qs[i].used.Cores)/qs[i].weight < float64(qs[j].used.Cores)/qs[j].weight
	})
	return qs
}

func (rm *ResourceManager) findNodeFor(res Resources) *node {
	// Best-fit: fewest free cores that still fit, for packing.
	var best *node
	ids := make([]string, 0, len(rm.nodes))
	for id := range rm.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		n := rm.nodes[id]
		if res.fits(n.free()) {
			if best == nil || n.free().Cores < best.free().Cores {
				best = n
			}
		}
	}
	return best
}

func (rm *ResourceManager) grantLocked(q *queue, n *node) {
	req := q.pending[0]
	q.pending = q.pending[1:]
	rm.nextCont++
	c := &Container{ID: rm.nextCont, App: req.app, NodeID: n.id, Res: req.res}
	rm.containers[c.ID] = c
	n.used.Cores += req.res.Cores
	n.used.MemMB += req.res.MemMB
	q.used.Cores += req.res.Cores
	q.used.MemMB += req.res.MemMB
	if a := rm.apps[req.app]; a != nil {
		a.used.Cores += req.res.Cores
		a.used.MemMB += req.res.MemMB
	}
	req.ch <- c.ID
}

// Release frees a container and triggers scheduling of pending requests.
func (rm *ResourceManager) Release(id ContainerID) error {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	c, ok := rm.containers[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoContainer, id)
	}
	delete(rm.containers, id)
	if n := rm.nodes[c.NodeID]; n != nil {
		n.used.Cores -= c.Res.Cores
		n.used.MemMB -= c.Res.MemMB
	}
	if a := rm.apps[c.App]; a != nil {
		a.used.Cores -= c.Res.Cores
		a.used.MemMB -= c.Res.MemMB
		if q := rm.queues[a.queue]; q != nil {
			q.used.Cores -= c.Res.Cores
			q.used.MemMB -= c.Res.MemMB
		}
	}
	rm.scheduleLocked()
	return nil
}

// Running returns the number of live containers.
func (rm *ResourceManager) Running() int {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return len(rm.containers)
}

// Pending returns the number of queued (ungranted) requests.
func (rm *ResourceManager) Pending() int {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	p := 0
	for _, q := range rm.queues {
		p += len(q.pending)
	}
	return p
}

// AppUsage returns an application's currently held resources.
func (rm *ResourceManager) AppUsage(app ApplicationID) (Resources, error) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	a, ok := rm.apps[app]
	if !ok {
		return Resources{}, fmt.Errorf("%w: %d", ErrNoApplication, app)
	}
	return a.used, nil
}

// QueueUsage returns a queue's currently held resources.
func (rm *ResourceManager) QueueUsage(name string) (Resources, error) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	q, ok := rm.queues[name]
	if !ok {
		return Resources{}, fmt.Errorf("%w: %s", ErrNoQueue, name)
	}
	return q.used, nil
}
