package yarn

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func newRM(t *testing.T, nodes int, perNode Resources) *ResourceManager {
	t.Helper()
	rm := NewResourceManager()
	for i := 0; i < nodes; i++ {
		if err := rm.AddNode(string(rune('a'+i)), perNode); err != nil {
			t.Fatal(err)
		}
	}
	return rm
}

func mustGrant(t *testing.T, ch <-chan ContainerID) ContainerID {
	t.Helper()
	select {
	case id := <-ch:
		return id
	case <-time.After(time.Second):
		t.Fatal("container not granted in time")
		return 0
	}
}

func assertNotGranted(t *testing.T, ch <-chan ContainerID) {
	t.Helper()
	select {
	case id := <-ch:
		t.Fatalf("unexpected grant %d", id)
	default:
	}
}

func TestImmediateGrant(t *testing.T) {
	rm := newRM(t, 2, Resources{Cores: 4, MemMB: 4096})
	app, err := rm.Submit("spark", "default")
	if err != nil {
		t.Fatal(err)
	}
	ch, err := rm.Request(app, Resources{Cores: 2, MemMB: 1024})
	if err != nil {
		t.Fatal(err)
	}
	id := mustGrant(t, ch)
	if rm.Running() != 1 {
		t.Fatalf("running = %d", rm.Running())
	}
	used, err := rm.AppUsage(app)
	if err != nil {
		t.Fatal(err)
	}
	if used.Cores != 2 || used.MemMB != 1024 {
		t.Fatalf("usage = %+v", used)
	}
	if err := rm.Release(id); err != nil {
		t.Fatal(err)
	}
	if rm.Running() != 0 {
		t.Fatalf("running after release = %d", rm.Running())
	}
}

func TestQueuesWhenFullThenGrantsOnRelease(t *testing.T) {
	rm := newRM(t, 1, Resources{Cores: 2, MemMB: 2048})
	app, _ := rm.Submit("a", "default")
	ch1, err := rm.Request(app, Resources{Cores: 2, MemMB: 1024})
	if err != nil {
		t.Fatal(err)
	}
	c1 := mustGrant(t, ch1)
	ch2, err := rm.Request(app, Resources{Cores: 2, MemMB: 1024})
	if err != nil {
		t.Fatal(err)
	}
	assertNotGranted(t, ch2)
	if rm.Pending() != 1 {
		t.Fatalf("pending = %d", rm.Pending())
	}
	if err := rm.Release(c1); err != nil {
		t.Fatal(err)
	}
	mustGrant(t, ch2)
	if rm.Pending() != 0 {
		t.Fatalf("pending after release = %d", rm.Pending())
	}
}

func TestRequestExceedingAnyNodeFails(t *testing.T) {
	rm := newRM(t, 3, Resources{Cores: 4, MemMB: 1024})
	app, _ := rm.Submit("a", "default")
	if _, err := rm.Request(app, Resources{Cores: 8, MemMB: 512}); !errors.Is(err, ErrOverCapacity) {
		t.Fatalf("err = %v", err)
	}
	if _, err := rm.Request(99, Resources{Cores: 1}); !errors.Is(err, ErrNoApplication) {
		t.Fatalf("err = %v", err)
	}
}

func TestSubmitUnknownQueue(t *testing.T) {
	rm := newRM(t, 1, Resources{Cores: 1, MemMB: 128})
	if _, err := rm.Submit("a", "nope"); !errors.Is(err, ErrNoQueue) {
		t.Fatalf("err = %v", err)
	}
}

func TestFairShareAcrossQueues(t *testing.T) {
	// One node with 4 cores; two queues with equal weight. Queue A floods
	// requests first, then queue B asks; after releases, B must be served
	// before A's backlog because A is above its fair share.
	rm := newRM(t, 1, Resources{Cores: 4, MemMB: 8192})
	if err := rm.AddQueue("qa", 1); err != nil {
		t.Fatal(err)
	}
	if err := rm.AddQueue("qb", 1); err != nil {
		t.Fatal(err)
	}
	appA, _ := rm.Submit("a", "qa")
	appB, _ := rm.Submit("b", "qb")
	unit := Resources{Cores: 1, MemMB: 256}

	var aGranted []ContainerID
	var aPending []<-chan ContainerID
	for i := 0; i < 6; i++ {
		ch, err := rm.Request(appA, unit)
		if err != nil {
			t.Fatal(err)
		}
		select {
		case id := <-ch:
			aGranted = append(aGranted, id)
		default:
			aPending = append(aPending, ch)
		}
	}
	if len(aGranted) != 4 || len(aPending) != 2 {
		t.Fatalf("A granted %d pending %d", len(aGranted), len(aPending))
	}
	chB, err := rm.Request(appB, unit)
	if err != nil {
		t.Fatal(err)
	}
	assertNotGranted(t, chB)

	// Release one of A's containers: B (usage 0) is more starved than A.
	if err := rm.Release(aGranted[0]); err != nil {
		t.Fatal(err)
	}
	mustGrant(t, chB)
	for _, ch := range aPending {
		assertNotGranted(t, ch)
	}
	usedB, _ := rm.QueueUsage("qb")
	if usedB.Cores != 1 {
		t.Fatalf("qb usage = %+v", usedB)
	}
}

func TestWeightedQueuePriority(t *testing.T) {
	// Heavy queue (weight 3) should win grants over light queue (weight 1)
	// when both are backlogged at equal usage ratio boundaries.
	rm := newRM(t, 1, Resources{Cores: 4, MemMB: 8192})
	_ = rm.AddQueue("heavy", 3)
	_ = rm.AddQueue("light", 1)
	heavy, _ := rm.Submit("h", "heavy")
	light, _ := rm.Submit("l", "light")
	unit := Resources{Cores: 1, MemMB: 128}

	// Fill the cluster from the default queue so both new queues backlog.
	blocker, _ := rm.Submit("blk", "default")
	var blockers []ContainerID
	for i := 0; i < 4; i++ {
		ch, _ := rm.Request(blocker, unit)
		blockers = append(blockers, mustGrant(t, ch))
	}
	chH, _ := rm.Request(heavy, unit)
	chL, _ := rm.Request(light, unit)
	assertNotGranted(t, chH)
	assertNotGranted(t, chL)

	// Free one core: both queues have 0 usage, ratio ties at 0; heavier
	// weight divides usage so both are 0 — grant order then depends on map
	// iteration unless we release two and observe both served.
	_ = rm.Release(blockers[0])
	_ = rm.Release(blockers[1])
	mustGrant(t, chH)
	mustGrant(t, chL)
}

func TestReleaseUnknownContainer(t *testing.T) {
	rm := newRM(t, 1, Resources{Cores: 1, MemMB: 128})
	if err := rm.Release(42); !errors.Is(err, ErrNoContainer) {
		t.Fatalf("err = %v", err)
	}
}

func TestTotalCapacity(t *testing.T) {
	rm := newRM(t, 3, Resources{Cores: 2, MemMB: 100})
	total := rm.TotalCapacity()
	if total.Cores != 6 || total.MemMB != 300 {
		t.Fatalf("total = %+v", total)
	}
}

func TestAddNodeDuplicate(t *testing.T) {
	rm := newRM(t, 1, Resources{Cores: 1, MemMB: 1})
	if err := rm.AddNode("a", Resources{Cores: 1, MemMB: 1}); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("err = %v", err)
	}
}

// TestConcurrentRequestsNeverExceedCapacity hammers the scheduler from many
// goroutines and verifies the core invariant: the sum of granted resources
// never exceeds cluster capacity, and all accounting returns to zero.
func TestConcurrentRequestsNeverExceedCapacity(t *testing.T) {
	rm := newRM(t, 3, Resources{Cores: 4, MemMB: 4096})
	app, err := rm.Submit("stress", "default")
	if err != nil {
		t.Fatal(err)
	}
	const workers = 16
	const perWorker = 20
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for i := 0; i < perWorker; i++ {
				ch, err := rm.Request(app, Resources{Cores: 1, MemMB: 256})
				if err != nil {
					errs <- err
					return
				}
				id := <-ch
				if rm.Running() > 12 { // 3 nodes × 4 cores at 1 core each
					errs <- fmt.Errorf("overcommit: %d running", rm.Running())
					return
				}
				if err := rm.Release(id); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if rm.Running() != 0 || rm.Pending() != 0 {
		t.Fatalf("leaked state: running=%d pending=%d", rm.Running(), rm.Pending())
	}
	used, err := rm.AppUsage(app)
	if err != nil {
		t.Fatal(err)
	}
	if used.Cores != 0 || used.MemMB != 0 {
		t.Fatalf("usage not returned to zero: %+v", used)
	}
}
