//go:build race

package repro

// raceEnabled reports that the race detector is instrumenting this build;
// allocation-budget assertions are skipped because instrumentation changes
// allocs/op.
const raceEnabled = true
